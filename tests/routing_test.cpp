#include "routing/routing.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "topology/generators.h"

namespace rn::routing {
namespace {

TEST(ShortestPath, LineTopology) {
  const topo::Topology t = topo::line(4);
  const Path p = shortest_path(t, 0, 3);
  ASSERT_EQ(p.size(), 3u);
  const std::vector<topo::NodeId> nodes = path_nodes(t, p, 0);
  EXPECT_EQ(nodes, (std::vector<topo::NodeId>{0, 1, 2, 3}));
}

TEST(ShortestPath, PrefersFewerHops) {
  // Triangle with a direct edge: 0→2 direct beats 0→1→2.
  topo::Topology t("t", 3);
  t.add_duplex_link(0, 1, 10.0);
  t.add_duplex_link(1, 2, 10.0);
  t.add_duplex_link(0, 2, 10.0);
  const Path p = shortest_path(t, 0, 2);
  EXPECT_EQ(p.size(), 1u);
}

TEST(ShortestPath, InverseCapacityWeightAvoidsSlowLink) {
  // Direct link is very slow; the 2-hop fast detour wins under 1/capacity.
  topo::Topology t("t", 3);
  t.add_duplex_link(0, 2, 1.0);     // slow direct
  t.add_duplex_link(0, 1, 100.0);
  t.add_duplex_link(1, 2, 100.0);
  const Path hops = shortest_path(t, 0, 2, LinkWeight::kHops);
  EXPECT_EQ(hops.size(), 1u);
  const Path inv = shortest_path(t, 0, 2, LinkWeight::kInverseCapacity);
  EXPECT_EQ(inv.size(), 2u);
}

TEST(ShortestPath, UnreachableReturnsEmpty) {
  topo::Topology t("t", 3);
  t.add_link(0, 1, 10.0);  // no path to 2
  EXPECT_TRUE(shortest_path(t, 0, 2).empty());
}

TEST(KShortestPaths, RingHasExactlyTwoDisjointRoutes) {
  const topo::Topology t = topo::ring(6);
  const std::vector<Path> ps = k_shortest_paths(t, 0, 3, 5);
  // Clockwise (3 hops) and counterclockwise (3 hops) are the only
  // loop-free simple routes in a ring.
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0].size(), 3u);
  EXPECT_EQ(ps[1].size(), 3u);
  EXPECT_NE(ps[0], ps[1]);
}

TEST(KShortestPaths, NondecreasingCost) {
  const topo::Topology t = topo::nsfnet();
  const std::vector<Path> ps = k_shortest_paths(t, 0, 9, 6);
  ASSERT_GE(ps.size(), 2u);
  for (std::size_t i = 1; i < ps.size(); ++i) {
    EXPECT_GE(ps[i].size(), ps[i - 1].size());
  }
}

TEST(KShortestPaths, AllDistinctAndValid) {
  const topo::Topology t = topo::geant2();
  const std::vector<Path> ps = k_shortest_paths(t, 2, 21, 8);
  std::set<Path> unique(ps.begin(), ps.end());
  EXPECT_EQ(unique.size(), ps.size());
  for (const Path& p : ps) {
    const std::vector<topo::NodeId> nodes = path_nodes(t, p, 2);
    EXPECT_EQ(nodes.back(), 21);
    std::set<topo::NodeId> distinct(nodes.begin(), nodes.end());
    EXPECT_EQ(distinct.size(), nodes.size()) << "loop in path";
  }
}

TEST(KShortestPaths, KOneMatchesShortest) {
  const topo::Topology t = topo::nsfnet();
  const std::vector<Path> ps = k_shortest_paths(t, 3, 8, 1);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].size(), shortest_path(t, 3, 8).size());
}

TEST(KShortestPaths, ExhaustsPathSpaceGracefully) {
  // A line has exactly one loop-free path per pair regardless of k.
  const topo::Topology t = topo::line(5);
  const std::vector<Path> ps = k_shortest_paths(t, 0, 4, 50);
  EXPECT_EQ(ps.size(), 1u);
}

TEST(KShortestPaths, LargeKOnRingFindsBothAndOnlyBoth) {
  const topo::Topology t = topo::ring(7);
  EXPECT_EQ(k_shortest_paths(t, 1, 4, 100).size(), 2u);
}

TEST(RoutingScheme, ShortestPathRoutingValidates) {
  const topo::Topology t = topo::nsfnet();
  const RoutingScheme scheme = shortest_path_routing(t);
  EXPECT_NO_THROW(validate_routing(t, scheme));
  EXPECT_GT(scheme.mean_path_length(), 1.0);
}

TEST(RoutingScheme, RandomKShortestValidatesOnAllNamedTopologies) {
  Rng rng(5);
  for (const topo::Topology& t : {topo::nsfnet(), topo::geant2()}) {
    const RoutingScheme scheme = random_k_shortest_routing(t, 3, rng);
    EXPECT_NO_THROW(validate_routing(t, scheme));
  }
}

TEST(RoutingScheme, RandomSchemesDifferAcrossSeeds) {
  const topo::Topology t = topo::geant2();
  Rng r1(1), r2(2);
  const RoutingScheme a = random_k_shortest_routing(t, 4, r1);
  const RoutingScheme b = random_k_shortest_routing(t, 4, r2);
  int diffs = 0;
  for (int idx = 0; idx < a.num_pairs(); ++idx) {
    if (a.path_by_index(idx) != b.path_by_index(idx)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(RoutingScheme, RandomNeverLongerThanKWorstCase) {
  // Every chosen path must still be one of the k shortest: its length can
  // exceed the shortest by only a bounded amount on these small graphs.
  const topo::Topology t = topo::nsfnet();
  Rng rng(3);
  const RoutingScheme scheme = random_k_shortest_routing(t, 3, rng);
  for (topo::NodeId s = 0; s < t.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      const std::vector<Path> ks = k_shortest_paths(t, s, d, 3);
      EXPECT_NE(std::find(ks.begin(), ks.end(), scheme.path(s, d)), ks.end());
    }
  }
}

TEST(ValidateRouting, CatchesCorruptPath) {
  const topo::Topology t = topo::ring(4);
  RoutingScheme scheme = shortest_path_routing(t);
  // Corrupt one entry with a discontinuous link sequence.
  Path bad = scheme.path(0, 2);
  std::reverse(bad.begin(), bad.end());
  scheme.set_path(0, 2, bad);
  EXPECT_THROW(validate_routing(t, scheme), std::runtime_error);
}

TEST(PathNodes, RejectsDiscontinuity) {
  const topo::Topology t = topo::line(4);
  // Link 0 is 0→1; link for 2→3 does not start at 1.
  const auto l23 = t.find_link(2, 3);
  ASSERT_TRUE(l23.has_value());
  const Path broken = {0, *l23};
  EXPECT_THROW(path_nodes(t, broken, 0), std::runtime_error);
}

}  // namespace
}  // namespace rn::routing
