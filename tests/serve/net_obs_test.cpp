// NetServer observability contract (labels: serve, net).
//
// In-process loopback coverage for the tracing + scraping surface of the
// RNP/1 server:
//   - predict_traced() round trip: the client-generated request id comes
//     back on the response with non-negative server attribution
//     (queue-wait ≤ total server time ≤ client rtt).
//   - A legacy id-less predict frame (hand-framed over a raw socket, no
//     trailing trace context) still serves, and its response carries no
//     attribution block — old clients keep working bit-for-bit.
//   - A client that stalls mid-frame (or sits idle) trips the
//     per-connection SO_RCVTIMEO: one clean kTimeout error frame, then
//     close, and the server's timeout counter moves.
//   - A stats scrape (kStatsRequest) reports the live registry: request
//     counters that grow between two scrapes, the installed model with
//     its version, and latency-window exemplars whose request ids all
//     belong to traced requests this process actually issued.
#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "routing/routing.h"
#include "serve/protocol.h"
#include "topology/generators.h"
#include "traffic/traffic.h"

namespace rn::serve {
namespace {

core::RouteNetConfig tiny_config() {
  core::RouteNetConfig cfg;
  cfg.link_state_dim = 6;
  cfg.path_state_dim = 6;
  cfg.iterations = 2;
  cfg.readout_hidden = 8;
  cfg.seed = 17;
  return cfg;
}

dataset::Sample make_request(std::uint64_t seed) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  Rng rng(seed);
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  return dataset::make_inference_sample(topology, std::move(scheme),
                                        std::move(tm));
}

ServerConfig fast_config() {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_deadline_s = 0.0;
  cfg.queue_capacity = 64;
  cfg.workers = 1;
  return cfg;
}

NetServerConfig loopback_config(double read_timeout_s = 30.0) {
  NetServerConfig cfg;
  cfg.listen = "tcp:127.0.0.1:0";
  cfg.read_timeout_s = read_timeout_s;
  return cfg;
}

// Every request id this test binary has sent. The obs::Registry (and so
// the latency-window exemplar store) is process-global, so the scrape
// test validates exemplar ids against everything issued here, not just
// its own requests.
std::set<std::uint64_t>& issued_rids() {
  static std::set<std::uint64_t> rids;
  return rids;
}

NetClient::PredictOutcome traced_predict(NetClient& client,
                                         const std::string& model,
                                         const dataset::Sample& sample) {
  NetClient::PredictOutcome out = client.predict_traced(model, sample);
  issued_rids().insert(out.request_id);
  return out;
}

// --- Raw-socket helpers (legacy client / stalling client) ------------------

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  return fd;
}

void write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

// Reads until `want` bytes or EOF; returns what arrived.
std::string read_upto(int fd, std::size_t want) {
  std::string buf;
  buf.resize(want);
  std::size_t off = 0;
  while (off < want) {
    const ssize_t n = ::read(fd, buf.data() + off, want - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  buf.resize(off);
  return buf;
}

// Reads one whole RNP/1 frame off a raw socket and parses it.
wire::Frame read_frame(int fd) {
  std::string bytes = read_upto(fd, wire::kHeaderLen);
  if (bytes.size() != wire::kHeaderLen) {
    throw wire::ProtocolError("connection closed mid-header");
  }
  const wire::FrameHeader header = wire::parse_frame_header(bytes.data());
  const std::string rest =
      read_upto(fd, header.payload_len + wire::kTrailerLen);
  if (rest.size() != header.payload_len + wire::kTrailerLen) {
    throw wire::ProtocolError("connection closed mid-frame");
  }
  return wire::parse_frame(bytes + rest);
}

std::uint64_t counter_value(const wire::StatsSnapshot& snap,
                            const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// --- Tests -----------------------------------------------------------------

TEST(NetObs, TracedPredictEchoesRequestIdWithAttribution) {
  ModelRegistry registry(fast_config());
  registry.install("m", std::make_unique<core::RouteNet>(tiny_config()));
  NetServer server(registry, loopback_config());
  server.start();

  NetClient client(server.address());
  const dataset::Sample sample = make_request(3);
  const NetClient::PredictOutcome a = traced_predict(client, "m", sample);
  const NetClient::PredictOutcome b = traced_predict(client, "m", sample);

  EXPECT_NE(a.request_id, 0u);
  EXPECT_NE(b.request_id, 0u);
  EXPECT_NE(a.request_id, b.request_id);
  EXPECT_TRUE(a.server_traced);
  // Attribution nests: queue wait is part of server time, which the
  // client's measured round trip must contain.
  EXPECT_GE(a.queue_wait_s, 0.0);
  EXPECT_LE(a.queue_wait_s, a.server_s);
  EXPECT_GT(a.server_s, 0.0);
  EXPECT_GE(a.rtt_s, a.server_s);
  EXPECT_EQ(a.prediction.delay_s.size(),
            static_cast<std::size_t>(sample.num_pairs()));

  server.stop();
}

TEST(NetObs, LegacyIdLessPredictStillServes) {
  ModelRegistry registry(fast_config());
  registry.install("m", std::make_unique<core::RouteNet>(tiny_config()));
  NetServer server(registry, loopback_config());
  server.start();

  const dataset::Sample sample = make_request(4);
  // Hand-frame the pre-trace wire form: no trailing TraceContext block.
  const std::string payload = wire::encode_predict_request("m", sample);
  const int fd = raw_connect(server.port());
  write_all(fd, wire::encode_frame(wire::FrameType::kPredictRequest, payload));

  const wire::Frame reply = read_frame(fd);
  ASSERT_EQ(reply.type, wire::FrameType::kPredictResponse);
  const wire::PredictResponse resp =
      wire::decode_predict_response_full(reply.payload);
  // An untraced request gets an untraced response — the server must not
  // invent an id or bolt attribution onto the legacy form.
  EXPECT_FALSE(resp.has_trace);
  EXPECT_EQ(resp.request_id, 0u);
  EXPECT_EQ(resp.prediction.delay_s.size(),
            static_cast<std::size_t>(sample.num_pairs()));

  ::close(fd);
  server.stop();
}

TEST(NetObs, StallingClientGetsTimeoutErrorThenClose) {
  ModelRegistry registry(fast_config());
  registry.install("m", std::make_unique<core::RouteNet>(tiny_config()));
  NetServer server(registry, loopback_config(/*read_timeout_s=*/0.2));
  server.start();

  // Send a deliberately partial frame (just the magic) and stall. The
  // server's read of the remaining header bytes must time out instead of
  // pinning the handler thread.
  const int fd = raw_connect(server.port());
  write_all(fd, std::string_view("RNP1", 4));

  const wire::Frame reply = read_frame(fd);
  ASSERT_EQ(reply.type, wire::FrameType::kError);
  const wire::ErrorFrame err = wire::decode_error(reply.payload);
  EXPECT_EQ(err.code, wire::ErrorCode::kTimeout);
  // After the error frame the server closes its side: next read is EOF.
  EXPECT_TRUE(read_upto(fd, 1).empty());
  ::close(fd);

  // The counter is bumped by the handler thread; give it a beat to land.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().timeouts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().timeouts, 1u);

  // The timeout must not have taken the server down: a healthy client on
  // a fresh connection still gets served.
  NetClient client(server.address());
  const NetClient::PredictOutcome out =
      traced_predict(client, "m", make_request(5));
  EXPECT_TRUE(out.server_traced);

  server.stop();
}

TEST(NetObs, StatsScrapeReportsCountersModelsAndExemplars) {
  ModelRegistry registry(fast_config());
  registry.install("m", std::make_unique<core::RouteNet>(tiny_config()));
  NetServer server(registry, loopback_config());
  server.start();

  NetClient client(server.address());
  const dataset::Sample sample = make_request(6);
  traced_predict(client, "m", sample);

  const wire::StatsSnapshot first = client.stats();
  EXPECT_GT(first.server_time_s, 0.0);
  const std::uint64_t requests_before =
      counter_value(first, "serve.net.requests_total");
  EXPECT_GE(requests_before, 1u);

  // The installed model shows up with its registry version.
  bool saw_model = false;
  for (const auto& m : first.models) {
    if (m.name == "m") {
      saw_model = true;
      EXPECT_EQ(m.version, 1u);
      EXPECT_GT(m.parameters, 0u);
    }
  }
  EXPECT_TRUE(saw_model);

  // The latency window carries exemplars, and every exemplar's request id
  // is one this process actually issued — the id is how a scrape links a
  // slow sample back to a specific request's trace spans.
  bool saw_latency_window = false;
  for (const auto& w : first.windows) {
    if (w.name != "serve.latency_s") continue;
    saw_latency_window = true;
    EXPECT_GE(w.count, 1u);
    ASSERT_FALSE(w.exemplars.empty());
    for (const auto& ex : w.exemplars) {
      EXPECT_TRUE(issued_rids().count(ex.request_id))
          << "exemplar rid " << ex.request_id
          << " does not match any issued request id";
    }
  }
  EXPECT_TRUE(saw_latency_window);

  // Counters move between scrapes — what `obs top` renders as deltas.
  traced_predict(client, "m", sample);
  traced_predict(client, "m", sample);
  const wire::StatsSnapshot second = client.stats();
  EXPECT_GE(counter_value(second, "serve.net.requests_total"),
            requests_before + 2);

  server.stop();
}

}  // namespace
}  // namespace rn::serve
