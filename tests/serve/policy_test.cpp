// AdaptiveBatchPolicy determinism suite (labels: serve, net).
//
// The controller's inputs are injectable (SampleFn is the p99 source,
// tick() is the clock), so every behavior here is exact, no sleeps:
// a fixed window trace produces the identical deadline sequence on every
// run, a constructed overload converges below the SLO and stays there,
// the deadline never leaves [min, max], and windows thinner than
// min_samples hold the deadline (no actuation on no signal).
#include "serve/policy.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace rn::serve {
namespace {

using WindowSample = AdaptiveBatchPolicy::WindowSample;

PolicyConfig test_config() {
  PolicyConfig cfg;
  cfg.slo_p99_s = 0.010;
  cfg.initial_deadline_s = 0.005;
  cfg.min_deadline_s = 0.0005;
  cfg.max_deadline_s = 0.050;
  cfg.increase_step_s = 0.001;
  cfg.decrease_factor = 0.5;
  cfg.min_samples = 16;
  return cfg;
}

TEST(AdaptiveBatchPolicy, ValidatesItsConfig) {
  const auto sample = [] { return WindowSample{}; };
  const auto apply = [](double) {};
  PolicyConfig bad = test_config();
  bad.decrease_factor = 1.5;
  EXPECT_THROW(AdaptiveBatchPolicy(bad, sample, apply),
               std::runtime_error);
  bad = test_config();
  bad.min_deadline_s = bad.max_deadline_s + 1.0;
  EXPECT_THROW(AdaptiveBatchPolicy(bad, sample, apply),
               std::runtime_error);
  bad = test_config();
  bad.initial_deadline_s = bad.max_deadline_s * 2;
  EXPECT_THROW(AdaptiveBatchPolicy(bad, sample, apply),
               std::runtime_error);
}

TEST(AdaptiveBatchPolicy, FixedTraceProducesIdenticalDeadlineSequence) {
  // Alternating healthy/breaching windows with a thin window mixed in.
  const std::vector<WindowSample> trace = {
      {100, 0.004}, {100, 0.015}, {8, 0.050},  {100, 0.009},
      {100, 0.012}, {100, 0.002}, {100, 0.011}, {40, 0.008},
  };
  const auto run = [&trace] {
    std::size_t i = 0;
    std::vector<double> deadlines;
    AdaptiveBatchPolicy policy(
        test_config(), [&] { return trace[i++ % trace.size()]; },
        [](double) {});
    for (std::size_t t = 0; t < 3 * trace.size(); ++t) {
      deadlines.push_back(policy.tick());
    }
    return deadlines;
  };
  const std::vector<double> first = run();
  const std::vector<double> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "tick " << i << " diverged";
  }
}

TEST(AdaptiveBatchPolicy, ConvergesBelowSloOnConstructedOverload) {
  // Latency model of an over-coalescing server: the windowed p99 is a
  // fixed compute base plus the full batch deadline (every request waits
  // the deadline out). Base 6ms, SLO 10ms: only deadlines under 4ms are
  // healthy, and the starting 40ms is far over.
  constexpr double kBase = 0.006;
  PolicyConfig cfg = test_config();
  cfg.initial_deadline_s = 0.040;
  double applied = cfg.initial_deadline_s;
  AdaptiveBatchPolicy policy(
      cfg, [&] { return WindowSample{100, kBase + applied}; },
      [&](double d) { applied = d; });

  std::size_t first_healthy = 0;
  for (std::size_t t = 0; t < 64; ++t) {
    const double deadline = policy.tick();
    EXPECT_GE(deadline, cfg.min_deadline_s);
    EXPECT_LE(deadline, cfg.max_deadline_s);
    if (first_healthy == 0 && kBase + deadline <= cfg.slo_p99_s) {
      first_healthy = t + 1;
    }
  }
  ASSERT_GT(first_healthy, 0u) << "never reached a healthy deadline";
  // Multiplicative decrease gets under the SLO fast: 40 -> 20 -> 10 ->
  // 5 -> 2.5ms, healthy by tick 4.
  EXPECT_LE(first_healthy, 4u);
  // Steady state oscillates around the SLO boundary: additive increases
  // probe up until one breach halves the deadline again, so the p99 never
  // runs away and the deadline stays in the band around slo - base.
  EXPECT_LE(kBase + policy.deadline_s(),
            cfg.slo_p99_s + cfg.increase_step_s);
  const AdaptiveBatchPolicy::Stats stats = policy.stats();
  EXPECT_EQ(stats.ticks, 64u);
  EXPECT_GT(stats.increases, 0u);
  EXPECT_GT(stats.decreases, 0u);
  EXPECT_EQ(stats.holds, 0u);
}

TEST(AdaptiveBatchPolicy, DeadlineNeverLeavesTheClamps) {
  PolicyConfig cfg = test_config();
  // Permanent breach: the deadline floors at min and stays there.
  AdaptiveBatchPolicy breached(
      cfg, [] { return WindowSample{100, 1.0}; }, [](double) {});
  for (int t = 0; t < 40; ++t) {
    EXPECT_GE(breached.tick(), cfg.min_deadline_s);
  }
  EXPECT_DOUBLE_EQ(breached.deadline_s(), cfg.min_deadline_s);

  // Permanently healthy: the deadline climbs to max and caps there.
  AdaptiveBatchPolicy healthy(
      cfg, [] { return WindowSample{100, 0.0001}; }, [](double) {});
  for (int t = 0; t < 200; ++t) {
    EXPECT_LE(healthy.tick(), cfg.max_deadline_s);
  }
  EXPECT_DOUBLE_EQ(healthy.deadline_s(), cfg.max_deadline_s);
}

TEST(AdaptiveBatchPolicy, ThinWindowsHoldWithoutActuating) {
  int applies = 0;
  PolicyConfig cfg = test_config();
  AdaptiveBatchPolicy policy(
      cfg,
      [&cfg] {
        // One below the threshold — and a p99 that would otherwise slam
        // the deadline to min.
        return WindowSample{cfg.min_samples - 1, 10.0};
      },
      [&applies](double) { ++applies; });
  for (int t = 0; t < 10; ++t) {
    EXPECT_DOUBLE_EQ(policy.tick(), cfg.initial_deadline_s);
  }
  EXPECT_EQ(applies, 0);
  const AdaptiveBatchPolicy::Stats stats = policy.stats();
  EXPECT_EQ(stats.ticks, 10u);
  EXPECT_EQ(stats.holds, 10u);
  EXPECT_EQ(stats.increases, 0u);
  EXPECT_EQ(stats.decreases, 0u);
}

TEST(AdaptiveBatchPolicy, ApplySeesEveryAdjustedDeadline) {
  std::vector<double> applied;
  std::vector<double> returned;
  std::size_t i = 0;
  const std::vector<WindowSample> trace = {
      {100, 0.020}, {100, 0.001}, {100, 0.030}, {100, 0.005}};
  AdaptiveBatchPolicy policy(
      test_config(), [&] { return trace[i++ % trace.size()]; },
      [&applied](double d) { applied.push_back(d); });
  for (std::size_t t = 0; t < trace.size(); ++t) {
    returned.push_back(policy.tick());
  }
  ASSERT_EQ(applied.size(), returned.size());
  for (std::size_t t = 0; t < returned.size(); ++t) {
    EXPECT_EQ(applied[t], returned[t]);
  }
}

TEST(AdaptiveBatchPolicy, BackgroundThreadStartsAndStopsCleanly) {
  PolicyConfig cfg = test_config();
  cfg.interval_s = 0.005;
  AdaptiveBatchPolicy policy(
      cfg, [] { return WindowSample{100, 0.001}; }, [](double) {});
  EXPECT_FALSE(policy.running());
  policy.start();
  EXPECT_TRUE(policy.running());
  policy.stop();
  EXPECT_FALSE(policy.running());
  // stop() is idempotent and restart works.
  policy.stop();
  policy.start();
  policy.stop();
  EXPECT_FALSE(policy.running());
}

}  // namespace
}  // namespace rn::serve
