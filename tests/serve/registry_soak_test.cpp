// ModelRegistry contract + hot-reload race soak (labels: serve, net, tsan).
//
// Unit half: name routing, version bumps, misses throwing, removal,
// file-backed load/reload picking up new weights, and the batch-deadline
// actuator propagating to every entry's server.
//
// Soak half: the atomic-snapshot swap under fire. Four client threads
// hammer acquire() → submit() → get() at full tilt while a reloader swaps
// the model between two differently-seeded RouteNets 100 times. Every
// response must be bitwise equal to one of the two models'
// single-request predict() — a torn swap, a half-initialized model, or a
// use-after-drain would break exact equality (and the tsan build would
// flag the race). In-flight requests finish on the snapshot they
// acquired; old entries drain when their last handle drops.
#include "serve/registry.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "par/thread_pool.h"
#include "routing/routing.h"
#include "topology/generators.h"
#include "traffic/traffic.h"

namespace rn::serve {
namespace {

core::RouteNetConfig tiny_config(std::uint64_t seed) {
  core::RouteNetConfig cfg;
  cfg.link_state_dim = 6;
  cfg.path_state_dim = 6;
  cfg.iterations = 2;
  cfg.readout_hidden = 8;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<core::RouteNet> make_model(std::uint64_t seed) {
  return std::make_unique<core::RouteNet>(tiny_config(seed));
}

dataset::Sample make_request(
    const std::shared_ptr<const topo::Topology>& topology,
    std::uint64_t seed) {
  Rng rng(seed);
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  return dataset::make_inference_sample(topology, std::move(scheme),
                                        std::move(tm));
}

bool bitwise_equal(const core::RouteNet::Prediction& a,
                   const core::RouteNet::Prediction& b) {
  if (a.delay_s.size() != b.delay_s.size() ||
      a.jitter_s.size() != b.jitter_s.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.delay_s.size(); ++i) {
    if (a.delay_s[i] != b.delay_s[i] || a.jitter_s[i] != b.jitter_s[i]) {
      return false;
    }
  }
  return true;
}

// Immediate-dispatch config: requests never wait out a coalescing
// deadline, so the soak's throughput is bounded by compute, not timers.
ServerConfig fast_config() {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_deadline_s = 0.0;
  cfg.queue_capacity = 64;
  cfg.workers = 1;
  return cfg;
}

TEST(ModelRegistry, RoutesByNameAndThrowsOnMiss) {
  ModelRegistry registry(fast_config());
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_THROW(registry.acquire("nope"), UnknownModelError);

  EXPECT_EQ(registry.install("a", make_model(1)), 1u);
  EXPECT_EQ(registry.install("b", make_model(2)), 1u);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.acquire("a")->name(), "a");
  EXPECT_EQ(registry.acquire("b")->name(), "b");
  EXPECT_THROW(registry.acquire("c"), UnknownModelError);

  // Replacing a name bumps its version; the other entry is untouched.
  EXPECT_EQ(registry.install("a", make_model(3)), 2u);
  EXPECT_EQ(registry.acquire("a")->version(), 2u);
  EXPECT_EQ(registry.acquire("b")->version(), 1u);

  const std::vector<ModelRegistry::ModelInfo> info = registry.list();
  ASSERT_EQ(info.size(), 2u);
  EXPECT_EQ(info[0].name, "a");
  EXPECT_GT(info[0].parameters, 0u);

  registry.remove("a");
  EXPECT_THROW(registry.acquire("a"), UnknownModelError);
  EXPECT_THROW(registry.remove("a"), UnknownModelError);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistry, RemovedEntryKeepsServingHeldHandles) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  ModelRegistry registry(fast_config());
  registry.install("m", make_model(7));
  const ModelRegistry::Handle handle = registry.acquire("m");
  registry.remove("m");
  // The snapshot no longer lists it, but the pinned entry still serves.
  const core::RouteNet::Prediction pred =
      handle->server().submit(make_request(topology, 1)).get();
  EXPECT_FALSE(pred.delay_s.empty());
}

TEST(ModelRegistry, LoadsAndHotReloadsFromFile) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  const dataset::Sample request = make_request(topology, 9);
  const std::string path =
      testing::TempDir() + "registry_reload_model.bin";
  core::RouteNet a(tiny_config(101));
  core::RouteNet b(tiny_config(202));
  const core::RouteNet::Prediction expect_a = a.predict(request);
  const core::RouteNet::Prediction expect_b = b.predict(request);
  ASSERT_FALSE(bitwise_equal(expect_a, expect_b))
      << "seeds 101/202 produced identical models; the reload test "
         "cannot distinguish them";

  a.save(path);
  ModelRegistry registry(fast_config());
  EXPECT_EQ(registry.load("m", path), 1u);
  EXPECT_TRUE(bitwise_equal(
      registry.acquire("m")->server().submit(request).get(), expect_a));

  // New weights land on disk; reload() swaps them in as version 2.
  b.save(path);
  EXPECT_EQ(registry.reload("m"), 2u);
  EXPECT_EQ(registry.acquire("m")->version(), 2u);
  EXPECT_TRUE(bitwise_equal(
      registry.acquire("m")->server().submit(request).get(), expect_b));

  EXPECT_THROW(registry.reload("missing"), UnknownModelError);
  // install()ed models have no source path to reload from.
  registry.install("mem", make_model(5));
  EXPECT_THROW(registry.reload("mem"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelRegistry, BatchDeadlinePropagatesToEveryEntry) {
  ServerConfig cfg = fast_config();
  cfg.batch_deadline_s = 0.010;
  ModelRegistry registry(cfg);
  registry.install("a", make_model(1));
  EXPECT_DOUBLE_EQ(registry.acquire("a")->server().batch_deadline_s(),
                   0.010);
  registry.set_batch_deadline(0.002);
  EXPECT_DOUBLE_EQ(registry.batch_deadline_s(), 0.002);
  EXPECT_DOUBLE_EQ(registry.acquire("a")->server().batch_deadline_s(),
                   0.002);
  // Entries created after the retune inherit the latest value, not the
  // constructor-time config.
  registry.install("b", make_model(2));
  EXPECT_DOUBLE_EQ(registry.acquire("b")->server().batch_deadline_s(),
                   0.002);
}

TEST(ModelRegistrySoak, HotReloadUnderFireServesOnlyWholeSnapshots) {
  par::set_global_threads(2);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  constexpr int kRequests = 8;
  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  constexpr int kSwaps = 100;
  constexpr std::uint64_t kSeedA = 11;
  constexpr std::uint64_t kSeedB = 22;

  std::vector<dataset::Sample> samples;
  std::vector<core::RouteNet::Prediction> expect_a;
  std::vector<core::RouteNet::Prediction> expect_b;
  {
    // Weight init is seed-deterministic, so reference instances predict
    // exactly what the registry's copies will.
    const core::RouteNet a(tiny_config(kSeedA));
    const core::RouteNet b(tiny_config(kSeedB));
    for (int i = 0; i < kRequests; ++i) {
      samples.push_back(make_request(topology, 300 + i));
      expect_a.push_back(a.predict(samples.back()));
      expect_b.push_back(b.predict(samples.back()));
    }
    ASSERT_FALSE(bitwise_equal(expect_a[0], expect_b[0]));
  }

  ModelRegistry registry(fast_config());
  registry.install("m", make_model(kSeedA));

  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const int i = (c * kPerClient + r) % kRequests;
        const ModelRegistry::Handle handle = registry.acquire("m");
        const core::RouteNet::Prediction pred =
            handle->server()
                .submit(samples[static_cast<std::size_t>(i)])
                .get();
        if (!bitwise_equal(pred,
                           expect_a[static_cast<std::size_t>(i)]) &&
            !bitwise_equal(pred,
                           expect_b[static_cast<std::size_t>(i)])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread reloader([&] {
    for (int s = 0; s < kSwaps; ++s) {
      registry.install("m", make_model(s % 2 == 0 ? kSeedB : kSeedA));
    }
  });
  for (std::thread& t : clients) t.join();
  reloader.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "some response matched neither snapshot's predict()";
  EXPECT_EQ(served.load(),
            static_cast<std::uint64_t>(kClients) * kPerClient);
  // 1 initial install + kSwaps replacements, every one versioned.
  EXPECT_EQ(registry.acquire("m")->version(),
            static_cast<std::uint64_t>(kSwaps) + 1);
  par::set_global_threads(0);
}

}  // namespace
}  // namespace rn::serve
