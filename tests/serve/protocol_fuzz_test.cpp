// RNP/1 wire-protocol fuzz suite (labels: serve, net, asan).
//
// The serving frontend reads frames off sockets from arbitrary peers, so
// the parser gets the RNCKPT2 hostile-input treatment: round-trips must be
// bitwise exact, EVERY truncation of a valid frame must throw a clean
// ProtocolError (never an abort or over-read), EVERY single-byte
// corruption must throw (the CRC trailer covers type ‖ payload; the
// envelope fields are each independently validated), and forged payloads
// with absurd counts — name lengths, node/link counts, path lengths, pair
// counts — must be rejected before anything is allocated. Runs under
// -DRN_SANITIZE=address so an over-read would crash loudly.
#include "serve/protocol.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "routing/routing.h"
#include "topology/generators.h"
#include "traffic/traffic.h"

namespace rn::serve::wire {
namespace {

dataset::Sample make_sample(int nodes, std::uint64_t seed) {
  auto topology =
      std::make_shared<const topo::Topology>(topo::ring(nodes));
  Rng rng(seed);
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  return dataset::make_inference_sample(topology, std::move(scheme),
                                        std::move(tm));
}

template <typename T>
void put_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_str(std::string& buf, std::string_view s) {
  put_pod(buf, static_cast<std::uint16_t>(s.size()));
  buf.append(s);
}

// --- Round trips -----------------------------------------------------------

TEST(ProtocolRoundTrip, PredictRequestIsBitwiseStable) {
  const dataset::Sample sample = make_sample(5, 7);
  const std::string payload = encode_predict_request("prod", sample);
  const PredictRequest decoded = decode_predict_request(payload);
  EXPECT_EQ(decoded.model, "prod");
  EXPECT_EQ(decoded.sample.topology->num_nodes(),
            sample.topology->num_nodes());
  EXPECT_EQ(decoded.sample.topology->num_links(),
            sample.topology->num_links());
  EXPECT_EQ(decoded.sample.topology->name(), sample.topology->name());
  // Re-encoding the decoded request must reproduce the exact bytes: the
  // encoding is canonical, so any drift (field order, rounding, lost
  // paths) shows up as inequality here.
  EXPECT_EQ(encode_predict_request("prod", decoded.sample), payload);
}

TEST(ProtocolRoundTrip, PredictResponsePreservesEveryBit) {
  core::RouteNet::Prediction pred;
  pred.delay_s = {0.0, 1e-9, 0.25, std::numeric_limits<double>::min(),
                  12345.678};
  pred.jitter_s = {0.5, 0.0, 3e-7, 1.0, 2.0};
  const std::string payload = encode_predict_response(pred);
  const core::RouteNet::Prediction decoded =
      decode_predict_response(payload);
  ASSERT_EQ(decoded.delay_s.size(), pred.delay_s.size());
  for (std::size_t i = 0; i < pred.delay_s.size(); ++i) {
    EXPECT_EQ(decoded.delay_s[i], pred.delay_s[i]);
    EXPECT_EQ(decoded.jitter_s[i], pred.jitter_s[i]);
  }
  EXPECT_EQ(encode_predict_response(decoded), payload);
}

TEST(ProtocolRoundTrip, TracedPredictRequestRoundTrips) {
  const dataset::Sample sample = make_sample(5, 7);
  TraceContext ctx;
  ctx.request_id = 0x1122334455667788ULL;
  ctx.client_send_unix_s = 1.7543e9;
  const std::string payload = encode_predict_request("prod", sample, ctx);
  const PredictRequest decoded = decode_predict_request(payload);
  EXPECT_TRUE(decoded.has_trace);
  EXPECT_EQ(decoded.trace.request_id, ctx.request_id);
  EXPECT_EQ(decoded.trace.client_send_unix_s, ctx.client_send_unix_s);
  EXPECT_EQ(encode_predict_request("prod", decoded.sample, decoded.trace),
            payload);
  // The extended form is the legacy form plus exactly the 16-byte trailer:
  // an id-less server reading only the prefix sees an unchanged request.
  EXPECT_EQ(payload.substr(0, payload.size() - 16),
            encode_predict_request("prod", sample));
}

TEST(ProtocolRoundTrip, LegacyIdLessPredictRequestStillDecodes) {
  const dataset::Sample sample = make_sample(4, 9);
  const PredictRequest decoded =
      decode_predict_request(encode_predict_request("old", sample));
  EXPECT_FALSE(decoded.has_trace);
  EXPECT_EQ(decoded.trace.request_id, 0u);
}

TEST(ProtocolRoundTrip, TracedPredictResponseRoundTrips) {
  core::RouteNet::Prediction pred;
  pred.delay_s = {0.001, 0.002};
  pred.jitter_s = {0.0001, 0.0002};
  const std::string payload =
      encode_predict_response(pred, 0xDEADBEEFULL, 0.0031, 0.0074);
  const PredictResponse decoded = decode_predict_response_full(payload);
  EXPECT_TRUE(decoded.has_trace);
  EXPECT_EQ(decoded.request_id, 0xDEADBEEFULL);
  EXPECT_EQ(decoded.queue_wait_s, 0.0031);
  EXPECT_EQ(decoded.server_s, 0.0074);
  EXPECT_EQ(decoded.prediction.delay_s, pred.delay_s);
  EXPECT_EQ(encode_predict_response(decoded.prediction, decoded.request_id,
                                    decoded.queue_wait_s, decoded.server_s),
            payload);
  // The prediction-only convenience decoder accepts both forms.
  EXPECT_EQ(decode_predict_response(payload).delay_s, pred.delay_s);
  const PredictResponse legacy =
      decode_predict_response_full(encode_predict_response(pred));
  EXPECT_FALSE(legacy.has_trace);
}

TEST(ProtocolFuzz, TraceContextValidationRejectsHostileTails) {
  const dataset::Sample sample = make_sample(4, 3);
  // Encoders refuse the reserved id 0 and non-finite timestamps.
  TraceContext ctx;
  ctx.request_id = 0;
  ctx.client_send_unix_s = 1.0;
  EXPECT_THROW(encode_predict_request("m", sample, ctx), ProtocolError);
  ctx.request_id = 7;
  ctx.client_send_unix_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(encode_predict_request("m", sample, ctx), ProtocolError);

  // A zero request id forged onto the wire throws on decode.
  ctx.client_send_unix_s = 1.0;
  std::string p = encode_predict_request("m", sample, ctx);
  const std::uint64_t zero = 0;
  std::memcpy(p.data() + p.size() - 16, &zero, sizeof(zero));
  EXPECT_THROW(decode_predict_request(p), ProtocolError);

  // The trailing block is all-or-nothing: any length other than 0 or 16
  // extra bytes is malformed, not silently skipped.
  const std::string legacy = encode_predict_request("m", sample);
  for (const int extra : {1, 8, 15, 17}) {
    std::string r = legacy;
    r.append(static_cast<std::size_t>(extra), '\x07');
    EXPECT_THROW(decode_predict_request(r), ProtocolError)
        << extra << " trailing bytes accepted";
  }
  // Same discipline on the response side (24-byte trailer).
  core::RouteNet::Prediction pred;
  pred.delay_s = {0.001};
  pred.jitter_s = {0.0001};
  const std::string resp = encode_predict_response(pred);
  for (const int extra : {1, 8, 16, 23, 25}) {
    std::string r = resp;
    r.append(static_cast<std::size_t>(extra), '\x07');
    EXPECT_THROW(decode_predict_response_full(r), ProtocolError)
        << extra << " trailing bytes accepted";
  }
  EXPECT_THROW(encode_predict_response(pred, 0, 0.0, 0.0), ProtocolError);
}

TEST(ProtocolRoundTrip, ErrorReloadAndControlFrames) {
  const ErrorFrame err =
      decode_error(encode_error(ErrorCode::kRejected, "queue full"));
  EXPECT_EQ(err.code, ErrorCode::kRejected);
  EXPECT_EQ(err.message, "queue full");

  EXPECT_EQ(decode_reload_request(encode_reload_request("canary")),
            "canary");
  const ReloadResponse r =
      decode_reload_response(encode_reload_response("canary", 17));
  EXPECT_EQ(r.model, "canary");
  EXPECT_EQ(r.version, 17u);

  for (const FrameType t :
       {FrameType::kShutdownRequest, FrameType::kShutdownAck}) {
    const Frame f = parse_frame(encode_frame(t, {}));
    EXPECT_EQ(f.type, t);
    EXPECT_TRUE(f.payload.empty());
  }
}

TEST(ProtocolRoundTrip, FrameEnvelopeCarriesPayloadVerbatim) {
  const std::string payload = encode_error(ErrorCode::kInternal, "boom");
  const std::string bytes = encode_frame(FrameType::kError, payload);
  EXPECT_EQ(bytes.size(), kHeaderLen + payload.size() + kTrailerLen);
  const Frame f = parse_frame(bytes);
  EXPECT_EQ(f.type, FrameType::kError);
  EXPECT_EQ(f.payload, payload);
}

// --- Exhaustive corruption -------------------------------------------------

std::string valid_frame() {
  return encode_frame(FrameType::kPredictRequest,
                      encode_predict_request("m", make_sample(4, 3)));
}

TEST(ProtocolFuzz, EveryTruncationThrows) {
  const std::string bytes = valid_frame();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(parse_frame(std::string_view(bytes.data(), len)),
                 ProtocolError)
        << "truncation at " << len << " of " << bytes.size()
        << " bytes parsed";
  }
}

TEST(ProtocolFuzz, EveryByteFlipThrows) {
  const std::string pristine = valid_frame();
  // Two flip patterns per offset: all-bits (gross corruption) and
  // low-bit (the subtle off-by-one a buggy sender would produce). The
  // CRC trailer covers type ‖ payload, the magic and declared length are
  // checked directly — so no single-byte change may parse.
  for (const unsigned char mask : {0xFFu, 0x01u}) {
    for (std::size_t i = 0; i < pristine.size(); ++i) {
      std::string bytes = pristine;
      bytes[i] = static_cast<char>(bytes[i] ^ static_cast<char>(mask));
      EXPECT_THROW(parse_frame(bytes), ProtocolError)
          << "flip mask 0x" << std::hex << static_cast<int>(mask)
          << " at offset " << std::dec << i << " parsed";
    }
  }
}

TEST(ProtocolFuzz, TrailingBytesAfterAValidFrameThrow) {
  std::string bytes = valid_frame();
  bytes.push_back('\0');
  EXPECT_THROW(parse_frame(bytes), ProtocolError);
}

// --- Hostile envelopes -----------------------------------------------------

TEST(ProtocolFuzz, WrongMagicThrows) {
  std::string bytes = encode_frame(FrameType::kShutdownRequest, {});
  bytes[0] = 'X';
  EXPECT_THROW(parse_frame(bytes), ProtocolError);
}

TEST(ProtocolFuzz, UnknownFrameTypeThrows) {
  for (const std::uint8_t t : {std::uint8_t{0}, std::uint8_t{10},
                               std::uint8_t{0x7F}, std::uint8_t{0xFF}}) {
    std::string bytes = encode_frame(FrameType::kShutdownRequest, {});
    bytes[4] = static_cast<char>(t);
    EXPECT_THROW(parse_frame(bytes), ProtocolError)
        << "type " << static_cast<int>(t) << " parsed";
  }
}

TEST(ProtocolFuzz, AbsurdDeclaredPayloadLengthThrows) {
  // Forge a header declaring a payload far over the cap: the header parse
  // must reject it before anyone tries to allocate 4 GiB.
  std::string bytes(kMagic, sizeof(kMagic));
  bytes.push_back(
      static_cast<char>(FrameType::kPredictRequest));
  put_pod(bytes, std::numeric_limits<std::uint32_t>::max());
  EXPECT_THROW(parse_frame_header(bytes.data()), ProtocolError);

  // Over-cap but bounded: encode_frame refuses to build it at all.
  EXPECT_THROW(
      encode_frame(FrameType::kError, std::string(kMaxPayload + 1, 'x')),
      ProtocolError);
}

TEST(ProtocolFuzz, DeclaredLengthDisagreeingWithBufferThrows) {
  std::string bytes = encode_frame(FrameType::kShutdownRequest, {});
  // Declare 1 payload byte while providing none.
  bytes[5] = 1;
  EXPECT_THROW(parse_frame(bytes), ProtocolError);
}

// --- Hostile predict-request payloads --------------------------------------

// Preamble shared by the forged-payload cases below.
std::string forged_preamble(std::int32_t n_nodes, std::int32_t n_links) {
  std::string p;
  put_str(p, "m");
  put_str(p, "forged");
  put_pod(p, n_nodes);
  put_pod(p, n_links);
  return p;
}

TEST(ProtocolFuzz, AbsurdNameLengthThrows) {
  std::string p;
  put_pod(p, std::numeric_limits<std::uint16_t>::max());  // name_len 65535
  p.append(16, 'x');  // far fewer bytes than declared
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
}

TEST(ProtocolFuzz, EmptyModelNameThrows) {
  std::string p;
  put_str(p, "");
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
}

TEST(ProtocolFuzz, AbsurdNodeAndLinkCountsThrow) {
  // Node count over the cap, negative, and below the minimum.
  for (const std::int32_t nodes :
       {kMaxNodes + 1, -5, 0, 1, std::numeric_limits<std::int32_t>::max()}) {
    EXPECT_THROW(decode_predict_request(forged_preamble(nodes, 1)),
                 ProtocolError)
        << "node count " << nodes << " accepted";
  }
  // Link count over the cap / non-positive.
  for (const std::int32_t links :
       {kMaxLinks + 1, -1, 0, std::numeric_limits<std::int32_t>::max()}) {
    EXPECT_THROW(decode_predict_request(forged_preamble(4, links)),
                 ProtocolError)
        << "link count " << links << " accepted";
  }
  // In-cap link count with far too few bytes behind it: the bulk require()
  // must reject before looping/allocating.
  EXPECT_THROW(decode_predict_request(forged_preamble(4, kMaxLinks)),
               ProtocolError);
}

TEST(ProtocolFuzz, OutOfRangeLinkEndpointsAndValuesThrow) {
  const auto with_link = [](std::int32_t src, std::int32_t dst, double cap,
                            double prop) {
    std::string p = forged_preamble(4, 1);
    put_pod(p, src);
    put_pod(p, dst);
    put_pod(p, cap);
    put_pod(p, prop);
    return p;
  };
  EXPECT_THROW(decode_predict_request(with_link(4, 0, 1e6, 0.0)),
               ProtocolError);  // src == n_nodes
  EXPECT_THROW(decode_predict_request(with_link(-1, 0, 1e6, 0.0)),
               ProtocolError);
  EXPECT_THROW(decode_predict_request(with_link(0, 1, 0.0, 0.0)),
               ProtocolError);  // capacity must be positive
  EXPECT_THROW(decode_predict_request(with_link(
                   0, 1, std::numeric_limits<double>::quiet_NaN(), 0.0)),
               ProtocolError);
  EXPECT_THROW(decode_predict_request(with_link(
                   0, 1, std::numeric_limits<double>::infinity(), 0.0)),
               ProtocolError);
  EXPECT_THROW(decode_predict_request(with_link(0, 1, 1e6, -0.5)),
               ProtocolError);  // negative prop delay
}

TEST(ProtocolFuzz, AbsurdPathLengthAndLinkIdsThrow) {
  // A valid 2-node, 1-link preamble; then a hostile path section.
  const auto with_paths = [](std::uint16_t len0, std::int32_t id0) {
    std::string p = forged_preamble(2, 1);
    put_pod(p, std::int32_t{0});  // link 0: 0 -> 1
    put_pod(p, std::int32_t{1});
    put_pod(p, 1e6);
    put_pod(p, 0.001);
    put_pod(p, len0);  // path for pair 0
    if (len0 > 0) put_pod(p, id0);
    return p;
  };
  // Path longer than the node count (loop-free bound).
  EXPECT_THROW(decode_predict_request(with_paths(3, 0)), ProtocolError);
  EXPECT_THROW(
      decode_predict_request(
          with_paths(std::numeric_limits<std::uint16_t>::max(), 0)),
      ProtocolError);
  // Link id outside the declared link table.
  EXPECT_THROW(decode_predict_request(with_paths(1, 1)), ProtocolError);
  EXPECT_THROW(decode_predict_request(with_paths(1, -1)), ProtocolError);
}

TEST(ProtocolFuzz, HostileTrafficRatesThrow) {
  const dataset::Sample sample = make_sample(4, 11);
  std::string p = encode_predict_request("m", sample);
  // The rates are the trailing n_pairs doubles; corrupt the last one.
  const std::size_t rate_off = p.size() - sizeof(double);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(p.data() + rate_off, &nan, sizeof(nan));
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
  const double neg = -1.0;
  std::memcpy(p.data() + rate_off, &neg, sizeof(neg));
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
}

TEST(ProtocolFuzz, TrailingPayloadBytesThrow) {
  std::string p = encode_predict_request("m", make_sample(4, 13));
  p.push_back('\0');
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
  std::string r = encode_reload_request("m");
  r.push_back('\0');
  EXPECT_THROW(decode_reload_request(r), ProtocolError);
}

// --- Hostile response/error payloads ---------------------------------------

TEST(ProtocolFuzz, AbsurdPairCountInResponseThrows) {
  std::string p;
  put_pod(p, std::numeric_limits<std::uint32_t>::max());
  EXPECT_THROW(decode_predict_response(p), ProtocolError);
  // In-cap count, no rows behind it.
  std::string q;
  put_pod(q, std::uint32_t{1000});
  EXPECT_THROW(decode_predict_response(q), ProtocolError);
}

TEST(ProtocolFuzz, UnknownErrorCodeThrows) {
  for (const std::uint16_t code :
       {std::uint16_t{0}, std::uint16_t{7},
        std::numeric_limits<std::uint16_t>::max()}) {
    std::string p;
    put_pod(p, code);
    put_str(p, "msg");
    EXPECT_THROW(decode_error(p), ProtocolError) << "code " << code;
  }
}

TEST(ProtocolFuzz, OversizedErrorMessageThrows) {
  std::string p;
  put_pod(p, static_cast<std::uint16_t>(ErrorCode::kInternal));
  put_pod(p, static_cast<std::uint16_t>(kMaxErrorMsgLen + 1));
  p.append(kMaxErrorMsgLen + 1, 'x');
  EXPECT_THROW(decode_error(p), ProtocolError);
  // encode_error itself truncates instead of throwing.
  const std::string enc =
      encode_error(ErrorCode::kInternal, std::string(4096, 'y'));
  EXPECT_EQ(decode_error(enc).message.size(), kMaxErrorMsgLen);
}

TEST(ProtocolFuzz, EmptyAndGarbagePayloadsThrowEverywhere) {
  const std::string garbage(64, '\xA5');
  EXPECT_THROW(decode_predict_request({}), ProtocolError);
  EXPECT_THROW(decode_predict_request(garbage), ProtocolError);
  EXPECT_THROW(decode_predict_response({}), ProtocolError);
  EXPECT_THROW(decode_error({}), ProtocolError);
  EXPECT_THROW(decode_reload_request({}), ProtocolError);
  EXPECT_THROW(decode_reload_response({}), ProtocolError);
  EXPECT_THROW(decode_reload_response(garbage), ProtocolError);
  EXPECT_THROW(decode_stats_response({}), ProtocolError);
  EXPECT_THROW(decode_stats_response(garbage), ProtocolError);
}

// --- Stats snapshot --------------------------------------------------------

StatsSnapshot make_snapshot() {
  StatsSnapshot snap;
  snap.server_time_s = 123.456;
  snap.trace_dropped = 3;
  snap.trace_sampled_out = 17;
  snap.counters.push_back({"serve.net.requests_total", 812});
  snap.counters.push_back({"serve.net.responses_total", 810});
  snap.gauges.push_back({"serve.net.active_connections", 4.0});
  snap.histograms.push_back(
      {"serve.batch_size", 101, 4.25, 4.0, 7.0, 8.0, 8.0});
  StatsSnapshot::WindowEntry w;
  w.name = "serve.latency_s";
  w.window_s = 30.0;
  w.count = 812;
  w.p50 = 0.0012;
  w.p95 = 0.0034;
  w.p99 = 0.0045;
  w.exemplars.push_back({31, 0.0013, 0xAABB0001ULL});
  w.exemplars.push_back({36, 0.0051, 0xAABB0002ULL});
  snap.windows.push_back(std::move(w));
  snap.models.push_back({"default", 2, 12345});
  return snap;
}

TEST(ProtocolRoundTrip, StatsResponseIsBitwiseStable) {
  const StatsSnapshot snap = make_snapshot();
  const std::string payload = encode_stats_response(snap);
  const StatsSnapshot decoded = decode_stats_response(payload);
  EXPECT_EQ(decoded.server_time_s, snap.server_time_s);
  EXPECT_EQ(decoded.trace_dropped, snap.trace_dropped);
  EXPECT_EQ(decoded.trace_sampled_out, snap.trace_sampled_out);
  ASSERT_EQ(decoded.counters.size(), snap.counters.size());
  EXPECT_EQ(decoded.counters[0].name, "serve.net.requests_total");
  EXPECT_EQ(decoded.counters[0].value, 812u);
  ASSERT_EQ(decoded.windows.size(), 1u);
  EXPECT_EQ(decoded.windows[0].p99, 0.0045);
  ASSERT_EQ(decoded.windows[0].exemplars.size(), 2u);
  EXPECT_EQ(decoded.windows[0].exemplars[1].request_id, 0xAABB0002ULL);
  ASSERT_EQ(decoded.models.size(), 1u);
  EXPECT_EQ(decoded.models[0].version, 2u);
  // encode(decode(bytes)) == bytes: the codec is canonical, so a hostile
  // middlebox cannot smuggle bytes an honest re-encode would not produce.
  EXPECT_EQ(encode_stats_response(decoded), payload);
}

TEST(ProtocolFuzz, EveryStatsTruncationThrows) {
  const std::string payload = encode_stats_response(make_snapshot());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(
        decode_stats_response(std::string_view(payload.data(), len)),
        ProtocolError)
        << "truncation at " << len << " of " << payload.size() << " parsed";
  }
  std::string extra = payload;
  extra.push_back('\0');
  EXPECT_THROW(decode_stats_response(extra), ProtocolError);
}

TEST(ProtocolFuzz, HostileStatsCountsThrow) {
  // Section count over the cap: rejected before any allocation.
  std::string p;
  put_pod(p, 123.0);           // server_time_s
  put_pod(p, std::uint64_t{0});  // trace_dropped
  put_pod(p, std::uint64_t{0});  // trace_sampled_out
  put_pod(p, static_cast<std::uint32_t>(kMaxStatsEntries + 1));
  EXPECT_THROW(decode_stats_response(p), ProtocolError);

  // In-cap count with no entries behind it.
  std::string q;
  put_pod(q, 123.0);
  put_pod(q, std::uint64_t{0});
  put_pod(q, std::uint64_t{0});
  put_pod(q, std::uint32_t{100});
  EXPECT_THROW(decode_stats_response(q), ProtocolError);

  // Exemplar count over the cap inside an otherwise valid window.
  StatsSnapshot snap = make_snapshot();
  snap.windows[0].exemplars.assign(
      kMaxExemplars + 1,
      StatsSnapshot::ExemplarEntry{1, 0.5, 42});
  EXPECT_THROW(encode_stats_response(snap), ProtocolError);

  // A zero exemplar request id forged onto the wire throws on decode
  // (0 is the reserved "untraced" id, so it can never name a request).
  snap = make_snapshot();
  snap.windows[0].exemplars.resize(1);
  std::string enc = encode_stats_response(snap);
  // The single exemplar's rid is the last 8 bytes before the model section
  // (name len + name + version + parameters).
  const std::size_t model_section =
      sizeof(std::uint32_t) + sizeof(std::uint16_t) +
      std::string("default").size() + 2 * sizeof(std::uint64_t);
  const std::size_t rid_off = enc.size() - model_section - sizeof(std::uint64_t);
  const std::uint64_t zero = 0;
  std::memcpy(enc.data() + rid_off, &zero, sizeof(zero));
  EXPECT_THROW(decode_stats_response(enc), ProtocolError);
}

}  // namespace
}  // namespace rn::serve::wire
