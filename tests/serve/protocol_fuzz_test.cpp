// RNP/1 wire-protocol fuzz suite (labels: serve, net, asan).
//
// The serving frontend reads frames off sockets from arbitrary peers, so
// the parser gets the RNCKPT2 hostile-input treatment: round-trips must be
// bitwise exact, EVERY truncation of a valid frame must throw a clean
// ProtocolError (never an abort or over-read), EVERY single-byte
// corruption must throw (the CRC trailer covers type ‖ payload; the
// envelope fields are each independently validated), and forged payloads
// with absurd counts — name lengths, node/link counts, path lengths, pair
// counts — must be rejected before anything is allocated. Runs under
// -DRN_SANITIZE=address so an over-read would crash loudly.
#include "serve/protocol.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "routing/routing.h"
#include "topology/generators.h"
#include "traffic/traffic.h"

namespace rn::serve::wire {
namespace {

dataset::Sample make_sample(int nodes, std::uint64_t seed) {
  auto topology =
      std::make_shared<const topo::Topology>(topo::ring(nodes));
  Rng rng(seed);
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  return dataset::make_inference_sample(topology, std::move(scheme),
                                        std::move(tm));
}

template <typename T>
void put_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_str(std::string& buf, std::string_view s) {
  put_pod(buf, static_cast<std::uint16_t>(s.size()));
  buf.append(s);
}

// --- Round trips -----------------------------------------------------------

TEST(ProtocolRoundTrip, PredictRequestIsBitwiseStable) {
  const dataset::Sample sample = make_sample(5, 7);
  const std::string payload = encode_predict_request("prod", sample);
  const PredictRequest decoded = decode_predict_request(payload);
  EXPECT_EQ(decoded.model, "prod");
  EXPECT_EQ(decoded.sample.topology->num_nodes(),
            sample.topology->num_nodes());
  EXPECT_EQ(decoded.sample.topology->num_links(),
            sample.topology->num_links());
  EXPECT_EQ(decoded.sample.topology->name(), sample.topology->name());
  // Re-encoding the decoded request must reproduce the exact bytes: the
  // encoding is canonical, so any drift (field order, rounding, lost
  // paths) shows up as inequality here.
  EXPECT_EQ(encode_predict_request("prod", decoded.sample), payload);
}

TEST(ProtocolRoundTrip, PredictResponsePreservesEveryBit) {
  core::RouteNet::Prediction pred;
  pred.delay_s = {0.0, 1e-9, 0.25, std::numeric_limits<double>::min(),
                  12345.678};
  pred.jitter_s = {0.5, 0.0, 3e-7, 1.0, 2.0};
  const std::string payload = encode_predict_response(pred);
  const core::RouteNet::Prediction decoded =
      decode_predict_response(payload);
  ASSERT_EQ(decoded.delay_s.size(), pred.delay_s.size());
  for (std::size_t i = 0; i < pred.delay_s.size(); ++i) {
    EXPECT_EQ(decoded.delay_s[i], pred.delay_s[i]);
    EXPECT_EQ(decoded.jitter_s[i], pred.jitter_s[i]);
  }
  EXPECT_EQ(encode_predict_response(decoded), payload);
}

TEST(ProtocolRoundTrip, ErrorReloadAndControlFrames) {
  const ErrorFrame err =
      decode_error(encode_error(ErrorCode::kRejected, "queue full"));
  EXPECT_EQ(err.code, ErrorCode::kRejected);
  EXPECT_EQ(err.message, "queue full");

  EXPECT_EQ(decode_reload_request(encode_reload_request("canary")),
            "canary");
  const ReloadResponse r =
      decode_reload_response(encode_reload_response("canary", 17));
  EXPECT_EQ(r.model, "canary");
  EXPECT_EQ(r.version, 17u);

  for (const FrameType t :
       {FrameType::kShutdownRequest, FrameType::kShutdownAck}) {
    const Frame f = parse_frame(encode_frame(t, {}));
    EXPECT_EQ(f.type, t);
    EXPECT_TRUE(f.payload.empty());
  }
}

TEST(ProtocolRoundTrip, FrameEnvelopeCarriesPayloadVerbatim) {
  const std::string payload = encode_error(ErrorCode::kInternal, "boom");
  const std::string bytes = encode_frame(FrameType::kError, payload);
  EXPECT_EQ(bytes.size(), kHeaderLen + payload.size() + kTrailerLen);
  const Frame f = parse_frame(bytes);
  EXPECT_EQ(f.type, FrameType::kError);
  EXPECT_EQ(f.payload, payload);
}

// --- Exhaustive corruption -------------------------------------------------

std::string valid_frame() {
  return encode_frame(FrameType::kPredictRequest,
                      encode_predict_request("m", make_sample(4, 3)));
}

TEST(ProtocolFuzz, EveryTruncationThrows) {
  const std::string bytes = valid_frame();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(parse_frame(std::string_view(bytes.data(), len)),
                 ProtocolError)
        << "truncation at " << len << " of " << bytes.size()
        << " bytes parsed";
  }
}

TEST(ProtocolFuzz, EveryByteFlipThrows) {
  const std::string pristine = valid_frame();
  // Two flip patterns per offset: all-bits (gross corruption) and
  // low-bit (the subtle off-by-one a buggy sender would produce). The
  // CRC trailer covers type ‖ payload, the magic and declared length are
  // checked directly — so no single-byte change may parse.
  for (const unsigned char mask : {0xFFu, 0x01u}) {
    for (std::size_t i = 0; i < pristine.size(); ++i) {
      std::string bytes = pristine;
      bytes[i] = static_cast<char>(bytes[i] ^ static_cast<char>(mask));
      EXPECT_THROW(parse_frame(bytes), ProtocolError)
          << "flip mask 0x" << std::hex << static_cast<int>(mask)
          << " at offset " << std::dec << i << " parsed";
    }
  }
}

TEST(ProtocolFuzz, TrailingBytesAfterAValidFrameThrow) {
  std::string bytes = valid_frame();
  bytes.push_back('\0');
  EXPECT_THROW(parse_frame(bytes), ProtocolError);
}

// --- Hostile envelopes -----------------------------------------------------

TEST(ProtocolFuzz, WrongMagicThrows) {
  std::string bytes = encode_frame(FrameType::kShutdownRequest, {});
  bytes[0] = 'X';
  EXPECT_THROW(parse_frame(bytes), ProtocolError);
}

TEST(ProtocolFuzz, UnknownFrameTypeThrows) {
  for (const std::uint8_t t : {std::uint8_t{0}, std::uint8_t{8},
                               std::uint8_t{0x7F}, std::uint8_t{0xFF}}) {
    std::string bytes = encode_frame(FrameType::kShutdownRequest, {});
    bytes[4] = static_cast<char>(t);
    EXPECT_THROW(parse_frame(bytes), ProtocolError)
        << "type " << static_cast<int>(t) << " parsed";
  }
}

TEST(ProtocolFuzz, AbsurdDeclaredPayloadLengthThrows) {
  // Forge a header declaring a payload far over the cap: the header parse
  // must reject it before anyone tries to allocate 4 GiB.
  std::string bytes(kMagic, sizeof(kMagic));
  bytes.push_back(
      static_cast<char>(FrameType::kPredictRequest));
  put_pod(bytes, std::numeric_limits<std::uint32_t>::max());
  EXPECT_THROW(parse_frame_header(bytes.data()), ProtocolError);

  // Over-cap but bounded: encode_frame refuses to build it at all.
  EXPECT_THROW(
      encode_frame(FrameType::kError, std::string(kMaxPayload + 1, 'x')),
      ProtocolError);
}

TEST(ProtocolFuzz, DeclaredLengthDisagreeingWithBufferThrows) {
  std::string bytes = encode_frame(FrameType::kShutdownRequest, {});
  // Declare 1 payload byte while providing none.
  bytes[5] = 1;
  EXPECT_THROW(parse_frame(bytes), ProtocolError);
}

// --- Hostile predict-request payloads --------------------------------------

// Preamble shared by the forged-payload cases below.
std::string forged_preamble(std::int32_t n_nodes, std::int32_t n_links) {
  std::string p;
  put_str(p, "m");
  put_str(p, "forged");
  put_pod(p, n_nodes);
  put_pod(p, n_links);
  return p;
}

TEST(ProtocolFuzz, AbsurdNameLengthThrows) {
  std::string p;
  put_pod(p, std::numeric_limits<std::uint16_t>::max());  // name_len 65535
  p.append(16, 'x');  // far fewer bytes than declared
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
}

TEST(ProtocolFuzz, EmptyModelNameThrows) {
  std::string p;
  put_str(p, "");
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
}

TEST(ProtocolFuzz, AbsurdNodeAndLinkCountsThrow) {
  // Node count over the cap, negative, and below the minimum.
  for (const std::int32_t nodes :
       {kMaxNodes + 1, -5, 0, 1, std::numeric_limits<std::int32_t>::max()}) {
    EXPECT_THROW(decode_predict_request(forged_preamble(nodes, 1)),
                 ProtocolError)
        << "node count " << nodes << " accepted";
  }
  // Link count over the cap / non-positive.
  for (const std::int32_t links :
       {kMaxLinks + 1, -1, 0, std::numeric_limits<std::int32_t>::max()}) {
    EXPECT_THROW(decode_predict_request(forged_preamble(4, links)),
                 ProtocolError)
        << "link count " << links << " accepted";
  }
  // In-cap link count with far too few bytes behind it: the bulk require()
  // must reject before looping/allocating.
  EXPECT_THROW(decode_predict_request(forged_preamble(4, kMaxLinks)),
               ProtocolError);
}

TEST(ProtocolFuzz, OutOfRangeLinkEndpointsAndValuesThrow) {
  const auto with_link = [](std::int32_t src, std::int32_t dst, double cap,
                            double prop) {
    std::string p = forged_preamble(4, 1);
    put_pod(p, src);
    put_pod(p, dst);
    put_pod(p, cap);
    put_pod(p, prop);
    return p;
  };
  EXPECT_THROW(decode_predict_request(with_link(4, 0, 1e6, 0.0)),
               ProtocolError);  // src == n_nodes
  EXPECT_THROW(decode_predict_request(with_link(-1, 0, 1e6, 0.0)),
               ProtocolError);
  EXPECT_THROW(decode_predict_request(with_link(0, 1, 0.0, 0.0)),
               ProtocolError);  // capacity must be positive
  EXPECT_THROW(decode_predict_request(with_link(
                   0, 1, std::numeric_limits<double>::quiet_NaN(), 0.0)),
               ProtocolError);
  EXPECT_THROW(decode_predict_request(with_link(
                   0, 1, std::numeric_limits<double>::infinity(), 0.0)),
               ProtocolError);
  EXPECT_THROW(decode_predict_request(with_link(0, 1, 1e6, -0.5)),
               ProtocolError);  // negative prop delay
}

TEST(ProtocolFuzz, AbsurdPathLengthAndLinkIdsThrow) {
  // A valid 2-node, 1-link preamble; then a hostile path section.
  const auto with_paths = [](std::uint16_t len0, std::int32_t id0) {
    std::string p = forged_preamble(2, 1);
    put_pod(p, std::int32_t{0});  // link 0: 0 -> 1
    put_pod(p, std::int32_t{1});
    put_pod(p, 1e6);
    put_pod(p, 0.001);
    put_pod(p, len0);  // path for pair 0
    if (len0 > 0) put_pod(p, id0);
    return p;
  };
  // Path longer than the node count (loop-free bound).
  EXPECT_THROW(decode_predict_request(with_paths(3, 0)), ProtocolError);
  EXPECT_THROW(
      decode_predict_request(
          with_paths(std::numeric_limits<std::uint16_t>::max(), 0)),
      ProtocolError);
  // Link id outside the declared link table.
  EXPECT_THROW(decode_predict_request(with_paths(1, 1)), ProtocolError);
  EXPECT_THROW(decode_predict_request(with_paths(1, -1)), ProtocolError);
}

TEST(ProtocolFuzz, HostileTrafficRatesThrow) {
  const dataset::Sample sample = make_sample(4, 11);
  std::string p = encode_predict_request("m", sample);
  // The rates are the trailing n_pairs doubles; corrupt the last one.
  const std::size_t rate_off = p.size() - sizeof(double);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(p.data() + rate_off, &nan, sizeof(nan));
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
  const double neg = -1.0;
  std::memcpy(p.data() + rate_off, &neg, sizeof(neg));
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
}

TEST(ProtocolFuzz, TrailingPayloadBytesThrow) {
  std::string p = encode_predict_request("m", make_sample(4, 13));
  p.push_back('\0');
  EXPECT_THROW(decode_predict_request(p), ProtocolError);
  std::string r = encode_reload_request("m");
  r.push_back('\0');
  EXPECT_THROW(decode_reload_request(r), ProtocolError);
}

// --- Hostile response/error payloads ---------------------------------------

TEST(ProtocolFuzz, AbsurdPairCountInResponseThrows) {
  std::string p;
  put_pod(p, std::numeric_limits<std::uint32_t>::max());
  EXPECT_THROW(decode_predict_response(p), ProtocolError);
  // In-cap count, no rows behind it.
  std::string q;
  put_pod(q, std::uint32_t{1000});
  EXPECT_THROW(decode_predict_response(q), ProtocolError);
}

TEST(ProtocolFuzz, UnknownErrorCodeThrows) {
  for (const std::uint16_t code :
       {std::uint16_t{0}, std::uint16_t{6},
        std::numeric_limits<std::uint16_t>::max()}) {
    std::string p;
    put_pod(p, code);
    put_str(p, "msg");
    EXPECT_THROW(decode_error(p), ProtocolError) << "code " << code;
  }
}

TEST(ProtocolFuzz, OversizedErrorMessageThrows) {
  std::string p;
  put_pod(p, static_cast<std::uint16_t>(ErrorCode::kInternal));
  put_pod(p, static_cast<std::uint16_t>(kMaxErrorMsgLen + 1));
  p.append(kMaxErrorMsgLen + 1, 'x');
  EXPECT_THROW(decode_error(p), ProtocolError);
  // encode_error itself truncates instead of throwing.
  const std::string enc =
      encode_error(ErrorCode::kInternal, std::string(4096, 'y'));
  EXPECT_EQ(decode_error(enc).message.size(), kMaxErrorMsgLen);
}

TEST(ProtocolFuzz, EmptyAndGarbagePayloadsThrowEverywhere) {
  const std::string garbage(64, '\xA5');
  EXPECT_THROW(decode_predict_request({}), ProtocolError);
  EXPECT_THROW(decode_predict_request(garbage), ProtocolError);
  EXPECT_THROW(decode_predict_response({}), ProtocolError);
  EXPECT_THROW(decode_error({}), ProtocolError);
  EXPECT_THROW(decode_reload_request({}), ProtocolError);
  EXPECT_THROW(decode_reload_response({}), ProtocolError);
  EXPECT_THROW(decode_reload_response(garbage), ProtocolError);
}

}  // namespace
}  // namespace rn::serve::wire
