// RNDS1 shard container + streaming loader contract:
//   - shard_first partitions any total contiguously and completely,
//   - N independently generated shards merged are bitwise identical to a
//     single-process run (at 1 and 4 threads — generation is thread-count
//     invariant),
//   - verify/merge refuse incoherent sets (seed / config-fingerprint
//     mismatch, missing or duplicated shards),
//   - StreamingDataset decodes exactly the generate_many samples,
//   - Trainer::fit over a streamed shard is bitwise identical to the
//     in-RAM vector path, with resident bytes bounded by the
//     dataset.stream.* gauges.
#include "dataset/shard.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "dataset/stream.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "topology/generators.h"

namespace rn::dataset {
namespace {

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  return cfg;
}

std::shared_ptr<const topo::Topology> shared_ring() {
  return std::make_shared<const topo::Topology>(topo::ring(6));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

TEST(ShardFirst, PartitionsContiguouslyAndCompletely) {
  for (const std::uint64_t total : {0ull, 1ull, 7ull, 10ull, 101ull}) {
    for (const std::uint32_t n : {1u, 2u, 3u, 4u, 7u}) {
      EXPECT_EQ(shard_first(total, 0, n), 0u);
      EXPECT_EQ(shard_first(total, n, n), total);
      std::uint64_t covered = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t first = shard_first(total, i, n);
        const std::uint64_t next = shard_first(total, i + 1, n);
        EXPECT_EQ(first, covered) << total << " over " << n << " at " << i;
        EXPECT_GE(next, first);
        // Block partition: shard sizes differ by at most one sample.
        EXPECT_LE(next - first, total / n + 1);
        covered = next;
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ShardFirst, SurvivesHugeTotals) {
  // (total * index) overflows u64 here; the u128 arithmetic must not.
  const std::uint64_t total = 1ull << 62;
  EXPECT_EQ(shard_first(total, 4, 4), total);
  EXPECT_EQ(shard_first(total, 2, 4), total / 2);
}

TEST(ShardGeneration, FourShardMergeBitwiseEqualsSingle) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  for (const int threads : {1, 4}) {
    par::set_global_threads(threads);
    const std::string tag = "_t" + std::to_string(threads);
    const std::string single = ::testing::TempDir() + "single" + tag + ".rnds";
    generate_shard(single, cfg, 31, topology, 6, 0, 1);
    std::vector<std::string> parts;
    for (std::uint32_t i = 0; i < 4; ++i) {
      const std::string p = ::testing::TempDir() + "part" +
                            std::to_string(i) + tag + ".rnds";
      generate_shard(p, cfg, 31, topology, 6, i, 4);
      parts.push_back(p);
    }
    EXPECT_EQ(verify_shards(parts).size(), 4u);
    const std::string merged = ::testing::TempDir() + "merged" + tag + ".rnds";
    merge_shards(merged, parts);
    EXPECT_EQ(read_file(single), read_file(merged))
        << "4-shard merge is not bitwise identical at " << threads
        << " thread(s)";
  }
  par::set_global_threads(0);
}

TEST(ShardGeneration, StreamedSamplesMatchGenerateMany) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  DatasetGenerator gen(cfg, 32);
  const std::vector<Sample> expected = gen.generate_many(topology, 4);
  const std::string path = ::testing::TempDir() + "roundtrip.rnds";
  generate_shard(path, cfg, 32, topology, 4, 0, 1);

  StreamingDataset stream(path);
  ASSERT_EQ(stream.size(), 4u);
  EXPECT_EQ(stream.header().seed, 32u);
  EXPECT_EQ(stream.header().config_fingerprint,
            config_fingerprint(cfg, *topology));
  std::vector<const Sample*> got;
  for (std::uint64_t i = 0; i < 4; ++i) {
    stream.materialize(&i, 1, got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0]->delay_s, expected[i].delay_s);
    EXPECT_EQ(got[0]->jitter_s, expected[i].jitter_s);
    EXPECT_EQ(got[0]->valid, expected[i].valid);
    EXPECT_DOUBLE_EQ(got[0]->tm.rate_by_index(3),
                     expected[i].tm.rate_by_index(3));
  }
}

TEST(ShardGeneration, VerifyRejectsSeedMismatch) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  const std::string a = ::testing::TempDir() + "seed_a.rnds";
  const std::string b = ::testing::TempDir() + "seed_b.rnds";
  generate_shard(a, cfg, 1, topology, 2, 0, 2);
  generate_shard(b, cfg, 2, topology, 2, 1, 2);
  EXPECT_THROW(verify_shards({a, b}), std::runtime_error);
  EXPECT_THROW(merge_shards(::testing::TempDir() + "seed_m.rnds", {a, b}),
               std::runtime_error);
}

TEST(ShardGeneration, VerifyRejectsConfigMismatch) {
  const auto topology = shared_ring();
  GeneratorConfig cfg_a = fast_config();
  GeneratorConfig cfg_b = fast_config();
  cfg_b.min_util = 0.42;
  const std::string a = ::testing::TempDir() + "cfg_a.rnds";
  const std::string b = ::testing::TempDir() + "cfg_b.rnds";
  generate_shard(a, cfg_a, 7, topology, 2, 0, 2);
  generate_shard(b, cfg_b, 7, topology, 2, 1, 2);
  EXPECT_NE(config_fingerprint(cfg_a, *topology),
            config_fingerprint(cfg_b, *topology));
  EXPECT_THROW(verify_shards({a, b}), std::runtime_error);
}

TEST(ShardGeneration, VerifyRejectsIncompleteOrDuplicatedSets) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  const std::string s0 = ::testing::TempDir() + "set_0.rnds";
  const std::string s1 = ::testing::TempDir() + "set_1.rnds";
  generate_shard(s0, cfg, 9, topology, 4, 0, 2);
  generate_shard(s1, cfg, 9, topology, 4, 1, 2);
  // Complete set is fine; any subset or duplicate is not a partition.
  EXPECT_EQ(verify_shards({s0, s1}).size(), 2u);
  EXPECT_THROW(verify_shards({s0}), std::runtime_error);
  EXPECT_THROW(verify_shards({s1}), std::runtime_error);
  EXPECT_THROW(verify_shards({s0, s0}), std::runtime_error);
  EXPECT_THROW(merge_shards(::testing::TempDir() + "set_m.rnds", {s1}),
               std::runtime_error);
}

TEST(ShardReaderSuite, DetectsFlippedRecordByteOnAccess) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  const std::string path = ::testing::TempDir() + "flip.rnds";
  generate_shard(path, cfg, 11, topology, 2, 0, 1);
  std::string bytes = read_file(path);
  // Flip one payload byte (header is 64 bytes; payload starts right after).
  bytes[kShardHeaderBytes + 5] =
      static_cast<char>(bytes[kShardHeaderBytes + 5] ^ 0x01);
  const std::string bad = ::testing::TempDir() + "flip_bad.rnds";
  {
    std::ofstream out(bad, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ShardReader reader(bad);  // structural parse ignores record CRCs
  EXPECT_THROW(reader.sample(0), std::runtime_error);
  EXPECT_THROW(reader.verify_all(), std::runtime_error);
  EXPECT_THROW(verify_shards({bad}), std::runtime_error);
}

core::RouteNetConfig small_model() {
  core::RouteNetConfig cfg;
  cfg.link_state_dim = 8;
  cfg.path_state_dim = 8;
  cfg.iterations = 2;
  cfg.readout_hidden = 12;
  return cfg;
}

core::TrainConfig small_train() {
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 2;
  cfg.learning_rate = 5e-3f;
  cfg.threads = 1;
  return cfg;
}

TEST(StreamingTrainer, BitwiseEqualsInRamTraining) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  DatasetGenerator gen(cfg, 41);
  const std::vector<Sample> in_ram = gen.generate_many(topology, 6);
  const std::string path = ::testing::TempDir() + "train.rnds";
  generate_shard(path, cfg, 41, topology, 6, 0, 1);

  core::RouteNet vec_model(small_model());
  {
    VectorSampleSource source(in_ram);
    core::Trainer trainer(vec_model, small_train());
    trainer.fit(source);
  }
  core::RouteNet stream_model(small_model());
  {
    StreamingDataset source(path);
    core::Trainer trainer(stream_model, small_train());
    trainer.fit(source);
  }

  const std::vector<ag::Parameter*> pa = vec_model.params();
  const std::vector<ag::Parameter*> pb = stream_model.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->name, pb[i]->name);
    EXPECT_EQ(0, std::memcmp(
                     pa[i]->value.data(), pb[i]->value.data(),
                     sizeof(float) *
                         static_cast<std::size_t>(pa[i]->value.size())))
        << "parameter '" << pa[i]->name
        << "' differs between streamed and in-RAM training";
  }
}

TEST(StreamingTrainer, ResidentBytesStayBoundedAndGauged) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  const std::string path = ::testing::TempDir() + "gauge.rnds";
  generate_shard(path, cfg, 43, topology, 6, 0, 1);

  obs::Registry& reg = obs::Registry::global();
  reg.gauge("dataset.stream.resident_peak_bytes").reset();
  reg.counter("dataset.stream.records_read_total").reset();

  StreamingDataset stream(path);
  EXPECT_EQ(reg.gauge("dataset.stream.file_bytes").value(),
            static_cast<double>(stream.file_bytes()));
  // One 2-sample minibatch at a time, like the trainer does.
  std::vector<const Sample*> out;
  const std::uint64_t batch[2] = {0, 1};
  stream.materialize(batch, 2, out);
  const double peak = reg.gauge("dataset.stream.resident_peak_bytes").value();
  EXPECT_GT(peak, 0.0);
  // The whole point of streaming: a minibatch is resident, not the corpus.
  EXPECT_LT(peak, static_cast<double>(stream.file_bytes()));
  EXPECT_EQ(reg.counter("dataset.stream.records_read_total").value(), 2u);
}

TEST(StreamingTrainer, ResidentCapRejectsOversizedBatch) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  const std::string path = ::testing::TempDir() + "cap.rnds";
  generate_shard(path, cfg, 44, topology, 2, 0, 1);
  StreamingOptions opts;
  opts.resident_cap_bytes = 1;  // nothing fits
  StreamingDataset stream(path, opts);
  std::vector<const Sample*> out;
  const std::uint64_t idx = 0;
  EXPECT_THROW(stream.materialize(&idx, 1, out), std::runtime_error);
}

TEST(LoadAnyDataset, ReadsBothContainers) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  DatasetGenerator gen(cfg, 45);
  const std::vector<Sample> samples = gen.generate_many(topology, 2);
  const std::string legacy = ::testing::TempDir() + "any_legacy.ds";
  const std::string shard = ::testing::TempDir() + "any_shard.rnds";
  save_dataset(legacy, samples);
  generate_shard(shard, cfg, 45, topology, 2, 0, 1);
  EXPECT_FALSE(is_shard_file(legacy));
  EXPECT_TRUE(is_shard_file(shard));
  const std::vector<Sample> from_legacy = load_any_dataset(legacy);
  const std::vector<Sample> from_shard = load_any_dataset(shard);
  ASSERT_EQ(from_legacy.size(), 2u);
  ASSERT_EQ(from_shard.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(from_legacy[i].delay_s, from_shard[i].delay_s);
    EXPECT_EQ(from_legacy[i].valid, from_shard[i].valid);
  }
}

TEST(StreamingNormalizer, MatchesVectorFit) {
  const GeneratorConfig cfg = fast_config();
  const auto topology = shared_ring();
  DatasetGenerator gen(cfg, 46);
  const std::vector<Sample> samples = gen.generate_many(topology, 3);
  const std::string path = ::testing::TempDir() + "norm.rnds";
  generate_shard(path, cfg, 46, topology, 3, 0, 1);

  const Normalizer vec_fit = fit_normalizer(samples);
  StreamingDataset stream(path);
  const Normalizer stream_fit = fit_normalizer(stream);
  // Same Welford accumulation order sample-by-sample: bitwise equal.
  EXPECT_EQ(vec_fit.log_delay_mean, stream_fit.log_delay_mean);
  EXPECT_EQ(vec_fit.log_delay_std, stream_fit.log_delay_std);
  EXPECT_EQ(vec_fit.capacity_scale, stream_fit.capacity_scale);
}

}  // namespace
}  // namespace rn::dataset
