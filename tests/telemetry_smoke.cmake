# Telemetry smoke test (ctest -R telemetry_smoke): runs the real routenet
# CLI with --metrics-out through a miniature pipeline, then uses
# `routenet obs summarize` to validate that every emitted line parses as a
# JSON telemetry record. Invoked with -DRN_CLI=<binary> -DWORK_DIR=<dir>.

if(NOT DEFINED RN_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRN_CLI=... -DWORK_DIR=... -P telemetry_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_step("${RN_CLI}" make-topology --kind ring --nodes 6 --out net.topo)
run_step("${RN_CLI}" make-routing --topology net.topo --k 2 --seed 3
         --out net.routes)
run_step("${RN_CLI}" make-traffic --topology net.topo --routing net.routes
         --kind gravity --util 0.6 --out net.traffic)

# Simulator telemetry: sim.run event + final metrics.snapshot.
run_step("${RN_CLI}" simulate --topology net.topo --routing net.routes
         --traffic net.traffic --pkts-per-flow 40 --metrics-out sim.jsonl)

# Trainer telemetry: per-batch and per-epoch events.
run_step("${RN_CLI}" gen-dataset --topology net.topo --count 4
         --pkts-per-flow 30 --seed 5 --out mini.ds)
run_step("${RN_CLI}" train --dataset mini.ds --epochs 2 --batch 2 --dim 8
         --iterations 2 --out mini.model --metrics-out train.jsonl)

# `obs summarize` re-parses every line and fails on the first malformed one.
run_step("${RN_CLI}" obs summarize sim.jsonl)
run_step("${RN_CLI}" obs summarize train.jsonl)

# The trainer file must actually contain per-batch and per-epoch events.
file(READ "${WORK_DIR}/train.jsonl" train_log)
foreach(needle "\"kind\":\"trainer.batch\"" "\"kind\":\"trainer.epoch\""
        "\"kind\":\"metrics.snapshot\"")
  string(FIND "${train_log}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "train.jsonl is missing ${needle}")
  endif()
endforeach()

file(READ "${WORK_DIR}/sim.jsonl" sim_log)
string(FIND "${sim_log}" "\"kind\":\"sim.run\"" found)
if(found EQUAL -1)
  message(FATAL_ERROR "sim.jsonl is missing the sim.run event")
endif()

message(STATUS "telemetry smoke OK")
