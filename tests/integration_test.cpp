// End-to-end pipeline tests: dataset generation → training → evaluation on
// unseen scenarios, exercising every library together the way the paper's
// experiment does (at miniature scale so the suite stays fast).
#include <memory>

#include <gtest/gtest.h>

#include "baseline/fcnn.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "planning/whatif.h"
#include "queueing/queueing.h"
#include "topology/generators.h"

namespace rn {
namespace {

dataset::GeneratorConfig fast_gen_config() {
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 80.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 8;
  return cfg;
}

core::RouteNetConfig small_model_config() {
  core::RouteNetConfig cfg;
  cfg.link_state_dim = 10;
  cfg.path_state_dim = 10;
  cfg.iterations = 3;
  cfg.readout_hidden = 16;
  return cfg;
}

TEST(Integration, TrainOnOneTopologyPredictOnAnotherSize) {
  // Miniature version of the paper's headline experiment: train on two
  // topology sizes, predict on a third size never seen in training, and
  // check the predictions correlate with the simulator's ground truth.
  dataset::DatasetGenerator gen(fast_gen_config(), 21);
  auto ring6 = std::make_shared<const topo::Topology>(topo::ring(6));
  auto star5 = std::make_shared<const topo::Topology>(topo::star(5));
  auto ring8 = std::make_shared<const topo::Topology>(topo::ring(8));

  std::vector<dataset::Sample> train = gen.generate_many(ring6, 10);
  {
    std::vector<dataset::Sample> more = gen.generate_many(star5, 10);
    for (dataset::Sample& s : more) train.push_back(std::move(s));
  }
  const std::vector<dataset::Sample> unseen = gen.generate_many(ring8, 4);

  core::RouteNet model(small_model_config());
  core::TrainConfig tcfg;
  tcfg.epochs = 35;
  tcfg.batch_size = 5;
  tcfg.learning_rate = 5e-3f;
  core::Trainer trainer(model, tcfg);
  trainer.fit(train);

  const eval::PairedSeries series = eval::collect_delay_pairs(
      unseen,
      [&](const dataset::Sample& s) { return model.predict(s).delay_s; });
  ASSERT_GT(series.truth.size(), 50u);
  const eval::RegressionStats stats =
      eval::regression_stats(series.truth, series.pred);
  // Unseen topology size: predictions must track the simulator.
  EXPECT_GT(stats.pearson_r, 0.7);
  EXPECT_LT(stats.mre, 0.6);
}

TEST(Integration, RouteNetBeatsUntrainedAndTracksQueueingOnMarkovTraffic) {
  dataset::DatasetGenerator gen(fast_gen_config(), 22);
  auto ring6 = std::make_shared<const topo::Topology>(topo::ring(6));
  std::vector<dataset::Sample> data = gen.generate_many(ring6, 16);
  auto [train, test] = dataset::split_dataset(std::move(data), 0.75, 5);

  core::RouteNet model(small_model_config());
  core::TrainConfig tcfg;
  tcfg.epochs = 35;
  tcfg.batch_size = 4;
  tcfg.learning_rate = 5e-3f;
  core::Trainer trainer(model, tcfg);
  trainer.fit(train);
  const double mre_routenet = core::Trainer::evaluate_delay_mre(model, test);

  core::RouteNet untrained(small_model_config());
  untrained.set_normalizer(dataset::fit_normalizer(train));
  const double mre_untrained =
      core::Trainer::evaluate_delay_mre(untrained, test);
  EXPECT_LT(mre_routenet, mre_untrained);
  EXPECT_LT(mre_routenet, 0.5);
}

TEST(Integration, FcnnCannotAcceptOtherTopologyButRouteNetCan) {
  dataset::DatasetGenerator gen(fast_gen_config(), 23);
  auto ring6 = std::make_shared<const topo::Topology>(topo::ring(6));
  auto ring8 = std::make_shared<const topo::Topology>(topo::ring(8));
  const std::vector<dataset::Sample> train = gen.generate_many(ring6, 6);
  const dataset::Sample other = gen.generate(ring8);

  baseline::FcnnConfig fcfg;
  fcfg.epochs = 5;
  baseline::FcnnBaseline fcnn(train[0].num_pairs(), fcfg);
  fcnn.fit(train);
  EXPECT_THROW(fcnn.predict_delay(other), std::runtime_error);

  core::RouteNet model(small_model_config());
  core::TrainConfig tcfg;
  tcfg.epochs = 2;
  core::Trainer trainer(model, tcfg);
  trainer.fit(train);
  EXPECT_NO_THROW(model.predict(other));
}

TEST(Integration, QueueingBaselineAccurateOnItsOwnAssumptions) {
  // Sanity for the bench narrative: on Poisson/exponential traffic the
  // analytic model should already be decent; it degrades on bursty traffic
  // (covered in queueing_test).
  dataset::GeneratorConfig gcfg = fast_gen_config();
  gcfg.max_util = 0.6;  // keep away from instability for the M/M/1 sum
  dataset::DatasetGenerator gen(gcfg, 24);
  auto ring6 = std::make_shared<const topo::Topology>(topo::ring(6));
  const std::vector<dataset::Sample> samples = gen.generate_many(ring6, 4);
  const queueing::QueueingPredictor predictor{traffic::TrafficModel{}};
  const eval::PairedSeries series = eval::collect_delay_pairs(
      samples, [&](const dataset::Sample& s) {
        return predictor.predict(*s.topology, s.routing, s.tm).delay_s;
      });
  const eval::RegressionStats stats =
      eval::regression_stats(series.truth, series.pred);
  EXPECT_GT(stats.pearson_r, 0.8);
  EXPECT_LT(stats.mre, 0.45);
}

TEST(Integration, WhatIfEngineWithTrainedRouteNet) {
  // Planning on top of the GNN: upgrading the hottest link of a loaded
  // ring must be predicted to help, and the ranking must run end to end.
  dataset::GeneratorConfig gcfg = fast_gen_config();
  gcfg.min_util = 0.6;
  gcfg.max_util = 0.8;
  gcfg.k_paths = 1;
  dataset::DatasetGenerator gen(gcfg, 26);
  auto ring6 = std::make_shared<const topo::Topology>(topo::ring(6));
  const std::vector<dataset::Sample> train = gen.generate_many(ring6, 14);

  core::RouteNet model(small_model_config());
  core::TrainConfig tcfg;
  tcfg.epochs = 25;
  tcfg.batch_size = 4;
  tcfg.learning_rate = 5e-3f;
  core::Trainer trainer(model, tcfg);
  trainer.fit(train);

  const dataset::Sample live = gen.generate(ring6);
  planning::Scenario scenario{live.topology, live.routing, live.tm};
  const planning::WhatIfEngine engine(
      scenario, [&model](const planning::Scenario& sc) {
        return model.predict(planning::scenario_to_sample(sc)).delay_s;
      });
  const std::vector<planning::UpgradeOption> options =
      engine.rank_upgrades(3, 3.0);
  ASSERT_EQ(options.size(), 3u);
  EXPECT_GT(options.front().improvement, 0.0);
}

TEST(Integration, SavedModelPredictsIdenticallyAfterReload) {
  dataset::DatasetGenerator gen(fast_gen_config(), 25);
  auto ring6 = std::make_shared<const topo::Topology>(topo::ring(6));
  const std::vector<dataset::Sample> train = gen.generate_many(ring6, 6);
  core::RouteNet model(small_model_config());
  core::TrainConfig tcfg;
  tcfg.epochs = 3;
  core::Trainer trainer(model, tcfg);
  trainer.fit(train);
  const std::string path = ::testing::TempDir() + "integration.model";
  model.save(path);
  const core::RouteNet loaded = core::RouteNet::load(path);
  const core::RouteNet::Prediction a = model.predict(train[0]);
  const core::RouteNet::Prediction b = loaded.predict(train[0]);
  for (std::size_t i = 0; i < a.delay_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_s[i], b.delay_s[i]);
  }
}

}  // namespace
}  // namespace rn
