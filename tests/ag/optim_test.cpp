#include "ag/optim.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

namespace rn::ag {
namespace {

// One optimization step result on f(p) = mean((p - t)^2).
double quadratic_loss_after(Optimizer& opt, Parameter& p, const Tensor& target,
                            int steps) {
  double loss = 0.0;
  for (int i = 0; i < steps; ++i) {
    Tape tape;
    const ValueId l = tape.mse(tape.param(p), target);
    opt.zero_grad();
    tape.backward(l);
    opt.step();
    loss = tape.value(l).at(0, 0);
  }
  return loss;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Parameter p("p", Tensor::from_rows({{5.0f, -3.0f}}));
  const Tensor target = Tensor::from_rows({{1.0f, 2.0f}});
  Sgd opt({&p}, 0.2f);
  const double loss = quadratic_loss_after(opt, p, target, 100);
  EXPECT_LT(loss, 1e-6);
  EXPECT_NEAR(p.value.at(0, 0), 1.0f, 1e-3);
}

TEST(Sgd, MomentumConvergesOnQuadratic) {
  Parameter p("p", Tensor::from_rows({{5.0f, -3.0f}}));
  const Tensor target = Tensor::from_rows({{1.0f, 2.0f}});
  Sgd opt({&p}, 0.05f, 0.9f);
  const double loss = quadratic_loss_after(opt, p, target, 200);
  EXPECT_LT(loss, 1e-5);
}

TEST(Adam, ConvergesOnQuadratic) {
  Parameter p("p", Tensor::from_rows({{5.0f, -3.0f}}));
  const Tensor target = Tensor::from_rows({{1.0f, 2.0f}});
  Adam opt({&p}, 0.1f);
  const double loss = quadratic_loss_after(opt, p, target, 400);
  EXPECT_LT(loss, 1e-5);
  EXPECT_EQ(opt.step_count(), 400);
}

TEST(Adam, HandlesSparseLargeGradientsBetterThanRawScale) {
  // Adam normalizes per-coordinate: a 1000× gradient imbalance should not
  // prevent convergence.
  Parameter p("p", Tensor::from_rows({{5.0f, -3.0f}}));
  Tensor target = Tensor::from_rows({{1.0f, 2.0f}});
  Adam opt({&p}, 0.05f);
  for (int i = 0; i < 600; ++i) {
    Tape tape;
    const ValueId v = tape.param(p);
    // loss = 1000*(p0-t0)^2 + (p1-t1)^2 (built via scaled slices)
    const ValueId d = tape.sub(v, tape.constant(target));
    const ValueId d2 = tape.mul(d, d);
    const ValueId heavy = tape.scale(tape.reduce_sum(tape.slice_cols(d2, 0, 1)),
                                     1000.0f);
    const ValueId light = tape.reduce_sum(tape.slice_cols(d2, 1, 2));
    const ValueId loss = tape.add(heavy, light);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0, 0), 1.0f, 1e-2);
  EXPECT_NEAR(p.value.at(0, 1), 2.0f, 1e-2);
}

TEST(ZeroGrad, ClearsAccumulatedGradients) {
  Parameter p("p", Tensor::scalar(1.0f));
  Sgd opt({&p}, 0.1f);
  {
    Tape tape;
    tape.backward(tape.reduce_sum(tape.param(p)));
  }
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 1.0f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.0f);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Parameter p("p", Tensor::from_rows({{0.0f, 0.0f}}));
  p.grad.at(0, 0) = 3.0f;
  p.grad.at(0, 1) = 4.0f;  // norm 5
  const double pre = clip_grad_norm({&p}, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(std::sqrt(p.grad.squared_norm()), 1.0, 1e-6);
  EXPECT_NEAR(p.grad.at(0, 0), 0.6f, 1e-6);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Parameter p("p", Tensor::from_rows({{0.0f}}));
  p.grad.at(0, 0) = 0.5f;
  const double pre = clip_grad_norm({&p}, 1.0);
  EXPECT_DOUBLE_EQ(pre, 0.5);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.5f);
}

TEST(Adam, StateRoundTripMakesNextStepBitwiseIdentical) {
  // Save Adam's moments + step count after a few steps, rebuild a fresh
  // optimizer from that state, and check the NEXT step lands on bitwise
  // identical parameters and moments — the property checkpoint/resume
  // relies on.
  const Tensor start = Tensor::from_rows({{5.0f, -3.0f}});
  const Tensor target = Tensor::from_rows({{1.0f, 2.0f}});

  Parameter p("p", start);
  Adam opt({&p}, 0.1f);
  quadratic_loss_after(opt, p, target, 3);

  // Snapshot: parameter value, moments, and step count after 3 steps.
  const Tensor p_after3 = p.value;
  std::vector<Tensor> m = opt.moments_m();
  std::vector<Tensor> v = opt.moments_v();
  const long steps = opt.step_count();
  ASSERT_EQ(steps, 3);

  // Continue the original for one more step.
  quadratic_loss_after(opt, p, target, 1);

  // Fresh parameter + optimizer restored from the snapshot.
  Parameter q("p", p_after3);
  Adam restored({&q}, 0.1f);
  restored.set_state(steps, std::move(m), std::move(v));
  quadratic_loss_after(restored, q, target, 1);

  EXPECT_EQ(restored.step_count(), opt.step_count());
  EXPECT_EQ(0, std::memcmp(p.value.data(), q.value.data(),
                           sizeof(float) *
                               static_cast<std::size_t>(p.value.size())));
  EXPECT_EQ(0, std::memcmp(opt.moments_m()[0].data(),
                           restored.moments_m()[0].data(),
                           sizeof(float) * static_cast<std::size_t>(
                                               p.value.size())));
  EXPECT_EQ(0, std::memcmp(opt.moments_v()[0].data(),
                           restored.moments_v()[0].data(),
                           sizeof(float) * static_cast<std::size_t>(
                                               p.value.size())));
}

TEST(Adam, SetStateRejectsBadInput) {
  Parameter p("p", Tensor::from_rows({{1.0f, 2.0f}}));
  Adam opt({&p}, 0.1f);
  // Wrong tensor count.
  EXPECT_THROW(opt.set_state(1, {}, {}), std::runtime_error);
  // Wrong shape.
  EXPECT_THROW(opt.set_state(1, {Tensor(2, 2)}, {Tensor(2, 2)}),
               std::runtime_error);
  // Negative step count.
  EXPECT_THROW(opt.set_state(-1, {Tensor(1, 2)}, {Tensor(1, 2)}),
               std::runtime_error);
}

TEST(Optimizer, RejectsNullParams) {
  EXPECT_THROW(Sgd({nullptr}, 0.1f), std::runtime_error);
}

TEST(Optimizer, RejectsBadLearningRate) {
  Parameter p("p", Tensor::scalar(0.0f));
  EXPECT_THROW(Sgd({&p}, 0.0f), std::runtime_error);
  EXPECT_THROW(Adam({&p}, -1.0f), std::runtime_error);
}

}  // namespace
}  // namespace rn::ag
