// Kernel-backend contract tests: the avx2 table must be bitwise identical
// to scalar on every op — including remainder tails at odd shapes, signed
// zeros, and the zero-entry skip that avoids Inf*0 NaNs — and the dispatch
// seams must fail safe.
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ag/kernels.h"
#include "util/rng.h"

namespace kern = rn::ag::kern;

namespace {

// Deterministic fill with exact zeros (hits the skip path) and negative
// zeros (memcmp catches any sign-of-zero divergence) sprinkled in.
std::vector<float> random_data(std::size_t n, std::uint64_t seed) {
  rn::Rng rng(static_cast<unsigned>(seed));
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int roll = rng.uniform_int(0, 9);
    if (roll == 0) {
      v[i] = 0.0f;
    } else if (roll == 1) {
      v[i] = -0.0f;
    } else {
      v[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  }
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Shapes chosen to stress every vector-width boundary: single element,
// sub-vector, one-past-vector, 8/32-multiples, and ragged tails.
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {{1, 1, 1},   {3, 5, 7},   {17, 31, 33},
                         {33, 65, 9}, {8, 16, 32}, {64, 64, 64},
                         {5, 240, 41}};

class KernelsAvx2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kern::backend_available(kern::Backend::kAvx2)) {
      GTEST_SKIP() << "avx2 backend not available on this build/CPU";
    }
  }
};

TEST_F(KernelsAvx2Test, MatmulFamilyBitwiseEqualAtOddShapes) {
  const kern::Ops& scalar = kern::ops(kern::Backend::kScalar);
  const kern::Ops& avx2 = kern::ops(kern::Backend::kAvx2);
  for (const Shape& s : kShapes) {
    const auto a = random_data(static_cast<std::size_t>(s.m) * s.k, 1);
    const auto b = random_data(static_cast<std::size_t>(s.k) * s.n, 2);
    const auto at = random_data(static_cast<std::size_t>(s.k) * s.m, 3);
    const auto bt = random_data(static_cast<std::size_t>(s.n) * s.k, 4);
    // C starts non-zero: the block kernels accumulate, so a stale += would
    // only show up against a dirty destination.
    const auto c0 = random_data(static_cast<std::size_t>(s.m) * s.n, 5);

    auto cs = c0, cv = c0;
    scalar.matmul_block(a.data(), b.data(), cs.data(), 0, s.m, s.k, s.n);
    avx2.matmul_block(a.data(), b.data(), cv.data(), 0, s.m, s.k, s.n);
    EXPECT_TRUE(bitwise_equal(cs, cv))
        << "matmul " << s.m << "x" << s.k << "x" << s.n;

    cs = c0;
    cv = c0;
    scalar.matmul_tn_block(at.data(), b.data(), cs.data(), 0, s.m, s.m, s.k,
                           s.n);
    avx2.matmul_tn_block(at.data(), b.data(), cv.data(), 0, s.m, s.m, s.k,
                         s.n);
    EXPECT_TRUE(bitwise_equal(cs, cv))
        << "matmul_tn " << s.m << "x" << s.k << "x" << s.n;

    cs = c0;
    cv = c0;
    scalar.matmul_nt_block(a.data(), bt.data(), cs.data(), 0, s.m, s.k, s.n);
    avx2.matmul_nt_block(a.data(), bt.data(), cv.data(), 0, s.m, s.k, s.n);
    EXPECT_TRUE(bitwise_equal(cs, cv))
        << "matmul_nt " << s.m << "x" << s.k << "x" << s.n;

    // Partial row ranges (the parallel chunking never hands a kernel the
    // whole range when threaded).
    if (s.m > 2) {
      cs = c0;
      cv = c0;
      scalar.matmul_block(a.data(), b.data(), cs.data(), 1, s.m - 1, s.k,
                          s.n);
      avx2.matmul_block(a.data(), b.data(), cv.data(), 1, s.m - 1, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(cs, cv)) << "matmul partial range";
    }
  }
}

TEST_F(KernelsAvx2Test, ZeroSkipSuppressesInfTimesZeroExactlyLikeScalar) {
  // a has an exact 0.0 (and a -0.0) where b's row is Inf: the scalar loop
  // skips those products entirely, so no NaN may appear — and the avx2
  // backend must make the same call.
  const int m = 4, k = 3, n = 17;
  auto a = random_data(static_cast<std::size_t>(m) * k, 6);
  auto b = random_data(static_cast<std::size_t>(k) * n, 7);
  for (int i = 0; i < m; ++i) a[static_cast<std::size_t>(i) * k + 1] = (i % 2) ? 0.0f : -0.0f;
  for (int j = 0; j < n; ++j) {
    b[static_cast<std::size_t>(1) * n + j] =
        std::numeric_limits<float>::infinity();
  }
  std::vector<float> cs(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> cv = cs;
  kern::ops(kern::Backend::kScalar)
      .matmul_block(a.data(), b.data(), cs.data(), 0, m, k, n);
  kern::ops(kern::Backend::kAvx2)
      .matmul_block(a.data(), b.data(), cv.data(), 0, m, k, n);
  for (const float v : cs) EXPECT_FALSE(std::isnan(v));
  EXPECT_TRUE(bitwise_equal(cs, cv));
}

TEST_F(KernelsAvx2Test, RowIndexOpsBitwiseEqualWithDuplicateIndices) {
  const kern::Ops& scalar = kern::ops(kern::Backend::kScalar);
  const kern::Ops& avx2 = kern::ops(kern::Backend::kAvx2);
  for (const int cols : {1, 7, 8, 17, 64}) {
    const int src_rows = 13, nrows = 29;
    const auto src =
        random_data(static_cast<std::size_t>(nrows) * cols, 8);
    const auto base =
        random_data(static_cast<std::size_t>(src_rows) * cols, 9);
    // Duplicates on purpose: indexed_row_add must accumulate repeats in the
    // same ascending order on both backends.
    std::vector<int> idx(nrows);
    rn::Rng rng(10);
    for (int& i : idx) i = rng.uniform_int(0, src_rows - 1);

    auto ds = base, dv = base;
    scalar.indexed_row_add(ds.data(), idx.data(), nrows, cols, src.data());
    avx2.indexed_row_add(dv.data(), idx.data(), nrows, cols, src.data());
    EXPECT_TRUE(bitwise_equal(ds, dv)) << "indexed_row_add cols=" << cols;

    std::vector<float> gs(static_cast<std::size_t>(nrows) * cols, 0.0f);
    std::vector<float> gv = gs;
    scalar.gather_rows(base.data(), idx.data(), nrows, cols, gs.data());
    avx2.gather_rows(base.data(), idx.data(), nrows, cols, gv.data());
    EXPECT_TRUE(bitwise_equal(gs, gv)) << "gather_rows cols=" << cols;

    auto hs = src, hv = src;
    scalar.gathered_row_add(hs.data(), idx.data(), nrows, cols, base.data());
    avx2.gathered_row_add(hv.data(), idx.data(), nrows, cols, base.data());
    EXPECT_TRUE(bitwise_equal(hs, hv)) << "gathered_row_add cols=" << cols;

    // scatter_rows needs unique targets by contract.
    std::vector<int> uniq(src_rows);
    for (int i = 0; i < src_rows; ++i) uniq[static_cast<std::size_t>(i)] = src_rows - 1 - i;
    auto ss = random_data(static_cast<std::size_t>(src_rows) * cols, 11);
    auto sv = ss;
    scalar.scatter_rows(ss.data(), uniq.data(), src_rows, cols, base.data());
    avx2.scatter_rows(sv.data(), uniq.data(), src_rows, cols, base.data());
    EXPECT_TRUE(bitwise_equal(ss, sv)) << "scatter_rows cols=" << cols;
  }
}

TEST_F(KernelsAvx2Test, ElementwiseOpsBitwiseEqualAtRaggedSizes) {
  const kern::Ops& scalar = kern::ops(kern::Backend::kScalar);
  const kern::Ops& avx2 = kern::ops(kern::Backend::kAvx2);
  for (const int cols : {1, 5, 8, 31}) {
    const int rows = 7;
    const std::size_t n = static_cast<std::size_t>(rows) * cols;
    const auto x = random_data(n, 12);
    const auto y0 = random_data(n, 13);
    const auto factors = random_data(static_cast<std::size_t>(rows), 14);
    const auto bias = random_data(static_cast<std::size_t>(cols), 15);

    auto as_ = y0, av_ = y0;
    scalar.axpy(as_.data(), x.data(), -1.375f, n);
    avx2.axpy(av_.data(), x.data(), -1.375f, n);
    EXPECT_TRUE(bitwise_equal(as_, av_)) << "axpy n=" << n;

    as_ = y0;
    av_ = y0;
    scalar.mul_inplace(as_.data(), x.data(), n);
    avx2.mul_inplace(av_.data(), x.data(), n);
    EXPECT_TRUE(bitwise_equal(as_, av_)) << "mul_inplace n=" << n;

    as_ = y0;
    av_ = y0;
    const auto x2 = random_data(n, 16);
    scalar.madd(as_.data(), x.data(), x2.data(), n);
    avx2.madd(av_.data(), x.data(), x2.data(), n);
    EXPECT_TRUE(bitwise_equal(as_, av_)) << "madd n=" << n;

    as_ = y0;
    av_ = y0;
    scalar.scale_rows(as_.data(), factors.data(), rows, cols);
    avx2.scale_rows(av_.data(), factors.data(), rows, cols);
    EXPECT_TRUE(bitwise_equal(as_, av_)) << "scale_rows cols=" << cols;

    as_ = y0;
    av_ = y0;
    scalar.add_scaled_rows(as_.data(), x.data(), factors.data(), rows, cols);
    avx2.add_scaled_rows(av_.data(), x.data(), factors.data(), rows, cols);
    EXPECT_TRUE(bitwise_equal(as_, av_)) << "add_scaled_rows cols=" << cols;

    as_ = y0;
    av_ = y0;
    scalar.add_bias_rows(as_.data(), bias.data(), rows, cols);
    avx2.add_bias_rows(av_.data(), bias.data(), rows, cols);
    EXPECT_TRUE(bitwise_equal(as_, av_)) << "add_bias_rows cols=" << cols;

    std::vector<float> col_s(static_cast<std::size_t>(cols), 0.5f);
    std::vector<float> col_v = col_s;
    scalar.colsum_add(col_s.data(), x.data(), rows, cols);
    avx2.colsum_add(col_v.data(), x.data(), rows, cols);
    EXPECT_TRUE(bitwise_equal(col_s, col_v)) << "colsum_add cols=" << cols;

    const auto z = random_data(n, 17);
    const auto hc = random_data(n, 18);
    std::vector<float> out_s(n, 0.0f), out_v(n, 0.0f);
    scalar.gru_blend(z.data(), y0.data(), hc.data(), out_s.data(), n);
    avx2.gru_blend(z.data(), y0.data(), hc.data(), out_v.data(), n);
    EXPECT_TRUE(bitwise_equal(out_s, out_v)) << "gru_blend n=" << n;
  }
}

TEST_F(KernelsAvx2Test, Avx2FmaMatmulIsCloseButNotRequiredBitwise) {
  if (!kern::backend_available(kern::Backend::kAvx2Fma)) {
    GTEST_SKIP() << "avx2fma backend not available";
  }
  // The opt-in fma table trades the bitwise contract for speed; it must
  // still agree to float accuracy.
  const Shape s{17, 31, 33};
  const auto a = random_data(static_cast<std::size_t>(s.m) * s.k, 19);
  const auto b = random_data(static_cast<std::size_t>(s.k) * s.n, 20);
  std::vector<float> cs(static_cast<std::size_t>(s.m) * s.n, 0.0f);
  std::vector<float> cf = cs;
  kern::ops(kern::Backend::kScalar)
      .matmul_block(a.data(), b.data(), cs.data(), 0, s.m, s.k, s.n);
  kern::ops(kern::Backend::kAvx2Fma)
      .matmul_block(a.data(), b.data(), cf.data(), 0, s.m, s.k, s.n);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_NEAR(cs[i], cf[i], 1e-4f * (1.0f + std::abs(cs[i])));
  }
}

TEST(KernelsDispatchTest, SetBackendSwitchesActiveTableAndReturnsPrevious) {
  const kern::Backend initial = kern::active_backend();
  const kern::Backend prev = kern::set_kernel_backend(kern::Backend::kScalar);
  EXPECT_EQ(prev, initial);
  EXPECT_EQ(kern::active_backend(), kern::Backend::kScalar);
  EXPECT_STREQ(kern::active().name, "scalar");
  kern::set_kernel_backend(initial);
  EXPECT_EQ(kern::active_backend(), initial);
}

TEST(KernelsDispatchTest, ScalarBackendIsAlwaysAvailable) {
  EXPECT_TRUE(kern::backend_available(kern::Backend::kScalar));
  EXPECT_STREQ(kern::backend_name(kern::Backend::kScalar), "scalar");
  EXPECT_STREQ(kern::backend_name(kern::Backend::kAvx2), "avx2");
  EXPECT_STREQ(kern::backend_name(kern::Backend::kAvx2Fma), "avx2fma");
}

}  // namespace
