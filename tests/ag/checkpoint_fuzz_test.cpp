// Hostile-input tests for the checkpoint readers: every truncation, every
// single-byte flip, wrong magic, and absurd header fields must raise a
// clean std::runtime_error — never crash, hang, or allocate unbounded
// memory. Runs under the `ckpt`, `tsan`, and `asan` ctest labels so the
// sanitizer builds exercise exactly these paths.
#include "ag/serialize.h"

#include <cstdint>
#include <cstring>
#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace rn::ag {
namespace {

template <typename T>
void put_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_str(std::string& buf, const std::string& s) {
  put_pod(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s);
}

// Wraps a hand-crafted payload in a well-formed RNCKPT2 envelope (magic,
// length, valid CRC) so the payload parser itself is what gets tested.
std::string wrap_v2(const std::string& payload) {
  std::string bytes("RNCKPT2\n");
  put_pod(bytes, static_cast<std::uint64_t>(payload.size()));
  bytes.append(payload);
  put_pod(bytes, crc32(payload.data(), payload.size()));
  return bytes;
}

std::string valid_bytes() {
  TrainCheckpoint ck;
  ck.params.emplace_back("layer.w",
                         Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}}));
  ck.params.emplace_back("layer.b", Tensor::scalar(0.5f));
  ck.has_optimizer = true;
  ck.adam_step = 9;
  ck.lr = 1e-3f;
  ck.adam_m.emplace_back("layer.w", Tensor(2, 2));
  ck.adam_m.emplace_back("layer.b", Tensor(1, 1));
  ck.adam_v.emplace_back("layer.w", Tensor(2, 2));
  ck.adam_v.emplace_back("layer.b", Tensor(1, 1));
  std::mt19937_64 engine(7);
  engine();
  std::ostringstream os;
  os << engine;
  ck.rng_streams.emplace_back("shuffle", os.str());
  ck.rng_streams.emplace_back("dropout", os.str());
  ck.has_cursor = true;
  ck.epoch = 1;
  ck.next_index = 2;
  ck.total_batches = 5;
  ck.order = {1, 0, 3, 2};
  return train_checkpoint_bytes(ck);
}

TEST(CheckpointFuzz, ValidBytesParse) {
  const TrainCheckpoint got = parse_train_checkpoint(valid_bytes());
  EXPECT_EQ(got.params.size(), 2u);
  EXPECT_TRUE(got.has_optimizer);
  EXPECT_TRUE(got.has_cursor);
}

TEST(CheckpointFuzz, EveryTruncationThrows) {
  const std::string bytes = valid_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(parse_train_checkpoint(bytes.substr(0, len)),
                 std::runtime_error)
        << "truncation to " << len << " bytes parsed";
  }
}

TEST(CheckpointFuzz, EveryByteFlipThrows) {
  const std::string bytes = valid_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xff);
    EXPECT_THROW(parse_train_checkpoint(flipped), std::runtime_error)
        << "flip at offset " << i << " parsed";
  }
}

TEST(CheckpointFuzz, WrongMagicThrows) {
  std::string bytes = valid_bytes();
  bytes.replace(0, 8, "RNCKPT9\n");
  EXPECT_THROW(parse_train_checkpoint(bytes), std::runtime_error);
  EXPECT_THROW(parse_train_checkpoint(std::string(64, 'x')),
               std::runtime_error);
}

TEST(CheckpointFuzz, TrailingBytesAfterValidFileThrow) {
  EXPECT_THROW(parse_train_checkpoint(valid_bytes() + "extra"),
               std::runtime_error);
}

TEST(CheckpointFuzz, AbsurdParamCountThrows) {
  std::string payload;
  put_pod(payload, static_cast<std::uint32_t>(0xffffffffu));
  EXPECT_THROW(parse_train_checkpoint(wrap_v2(payload)), std::runtime_error);
}

TEST(CheckpointFuzz, AbsurdNameLenThrows) {
  // A name length far beyond the payload must fail before allocating.
  std::string payload;
  put_pod(payload, static_cast<std::uint32_t>(1));  // one param
  put_pod(payload, static_cast<std::uint32_t>(0xfffffff0u));
  payload.append("x");
  EXPECT_THROW(parse_train_checkpoint(wrap_v2(payload)), std::runtime_error);
  // A name length over the cap but "covered" by payload bytes also fails.
  std::string payload2;
  put_pod(payload2, static_cast<std::uint32_t>(1));
  put_pod(payload2, static_cast<std::uint32_t>(8192));
  payload2.append(8192, 'n');
  EXPECT_THROW(parse_train_checkpoint(wrap_v2(payload2)),
               std::runtime_error);
}

TEST(CheckpointFuzz, NegativeAndHugeShapesThrow) {
  for (const auto& [rows, cols] :
       {std::pair<std::int32_t, std::int32_t>{-1, 4},
        {4, -1},
        {0x7fffffff, 0x7fffffff},
        {1 << 20, 1 << 20}}) {
    std::string payload;
    put_pod(payload, static_cast<std::uint32_t>(1));
    put_str(payload, "w");
    put_pod(payload, rows);
    put_pod(payload, cols);
    EXPECT_THROW(parse_train_checkpoint(wrap_v2(payload)),
                 std::runtime_error)
        << rows << "x" << cols << " accepted";
  }
}

TEST(CheckpointFuzz, AbsurdRngStateLenThrows) {
  std::string payload;
  put_pod(payload, static_cast<std::uint32_t>(0));  // no params
  put_pod(payload, static_cast<std::uint8_t>(0));   // no optimizer
  put_pod(payload, static_cast<std::uint32_t>(1));  // one rng stream
  put_str(payload, "shuffle");
  put_pod(payload, static_cast<std::uint32_t>(0x7fffffffu));
  EXPECT_THROW(parse_train_checkpoint(wrap_v2(payload)), std::runtime_error);
}

TEST(CheckpointFuzz, AbsurdOrderLenThrows) {
  std::string payload;
  put_pod(payload, static_cast<std::uint32_t>(0));  // no params
  put_pod(payload, static_cast<std::uint8_t>(0));   // no optimizer
  put_pod(payload, static_cast<std::uint32_t>(0));  // no rng streams
  put_pod(payload, static_cast<std::uint8_t>(1));   // cursor present
  put_pod(payload, static_cast<std::int32_t>(0));   // epoch
  put_pod(payload, static_cast<std::int64_t>(0));   // next_index
  put_pod(payload, static_cast<std::uint64_t>(0));  // total_batches
  put_pod(payload, 0.0);                            // best_eval_mre
  put_pod(payload, static_cast<std::int32_t>(-1));  // best_epoch
  put_pod(payload, static_cast<std::int32_t>(0));   // epochs_since_best
  put_pod(payload, 0.0);                            // epoch_loss_sum
  put_pod(payload, static_cast<std::int32_t>(0));   // epoch_batches
  put_pod(payload, static_cast<std::uint64_t>(0));  // epoch_samples
  put_pod(payload, static_cast<std::uint32_t>(0xffffff00u));
  EXPECT_THROW(parse_train_checkpoint(wrap_v2(payload)), std::runtime_error);
}

TEST(CheckpointFuzz, CursorIndexOutsideOrderThrows) {
  TrainCheckpoint ck;
  ck.has_cursor = true;
  ck.next_index = 9;
  ck.order = {0, 1, 2};
  const std::string bytes = train_checkpoint_bytes(ck);
  EXPECT_THROW(parse_train_checkpoint(bytes), std::runtime_error);
}

// --- Legacy RNCKPT1 parameter blocks -------------------------------------

std::string valid_v1_bytes() {
  Parameter a("layer.w", Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}}));
  Parameter b("layer.b", Tensor::scalar(0.5f));
  std::ostringstream out(std::ios::binary);
  save_parameters(out, {&a, &b});
  return out.str();
}

TEST(CheckpointFuzz, V1EveryTruncationThrows) {
  const std::string bytes = valid_v1_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(parse_train_checkpoint(bytes.substr(0, len)),
                 std::runtime_error)
        << "v1 truncation to " << len << " bytes parsed";
  }
}

TEST(CheckpointFuzz, V1AbsurdHeaderFieldsThrow) {
  // name_len beyond the cap
  std::string b1("RNCKPT1\n");
  put_pod(b1, static_cast<std::uint32_t>(1));
  put_pod(b1, static_cast<std::uint32_t>(0xffffffffu));
  EXPECT_THROW(parse_train_checkpoint(b1), std::runtime_error);

  // huge shape with no payload behind it
  std::string b2("RNCKPT1\n");
  put_pod(b2, static_cast<std::uint32_t>(1));
  put_str(b2, "w");
  put_pod(b2, static_cast<std::int32_t>(0x7fffffff));
  put_pod(b2, static_cast<std::int32_t>(0x7fffffff));
  EXPECT_THROW(parse_train_checkpoint(b2), std::runtime_error);

  // negative shape
  std::string b3("RNCKPT1\n");
  put_pod(b3, static_cast<std::uint32_t>(1));
  put_str(b3, "w");
  put_pod(b3, static_cast<std::int32_t>(-5));
  put_pod(b3, static_cast<std::int32_t>(2));
  EXPECT_THROW(parse_train_checkpoint(b3), std::runtime_error);
}

TEST(CheckpointFuzz, V1LoadParametersRejectsAbsurdShapes) {
  // The streaming loader (model files embed RNCKPT1 blocks) must apply the
  // same bounds: huge claimed shapes fail against the remaining file size
  // instead of allocating.
  std::string bytes("RNCKPT1\n");
  put_pod(bytes, static_cast<std::uint32_t>(1));
  put_str(bytes, "p");
  put_pod(bytes, static_cast<std::int32_t>(1 << 24));
  put_pod(bytes, static_cast<std::int32_t>(1 << 24));
  std::istringstream in(bytes, std::ios::binary);
  Parameter p("p", Tensor::scalar(0.0f));
  EXPECT_THROW(load_parameters(in, {&p}), std::runtime_error);
}

}  // namespace
}  // namespace rn::ag
