#include "ag/tape.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"

namespace rn::ag {
namespace {

using rn::testing::expect_gradients_match;

TEST(TapeForward, AddSubMul) {
  Tape tape;
  const ValueId a = tape.constant(Tensor::from_rows({{1.0f, 2.0f}}));
  const ValueId b = tape.constant(Tensor::from_rows({{3.0f, -1.0f}}));
  EXPECT_FLOAT_EQ(tape.value(tape.add(a, b)).at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.sub(a, b)).at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.mul(a, b)).at(0, 1), -2.0f);
}

TEST(TapeForward, ShapeMismatchThrows) {
  Tape tape;
  const ValueId a = tape.constant(Tensor(1, 2));
  const ValueId b = tape.constant(Tensor(2, 2));
  EXPECT_THROW(tape.add(a, b), std::runtime_error);
  EXPECT_THROW(tape.mul(a, b), std::runtime_error);
}

TEST(TapeForward, AddBiasBroadcasts) {
  Tape tape;
  const ValueId m = tape.constant(Tensor::from_rows({{1.0f, 2.0f},
                                                     {3.0f, 4.0f}}));
  const ValueId bias = tape.constant(Tensor::from_rows({{10.0f, 20.0f}}));
  const Tensor& y = tape.value(tape.add_bias(m, bias));
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 24.0f);
}

TEST(TapeForward, Nonlinearities) {
  Tape tape;
  const ValueId x = tape.constant(Tensor::from_rows({{0.0f, -1.0f, 2.0f}}));
  const Tensor& sig = tape.value(tape.sigmoid(x));
  EXPECT_NEAR(sig.at(0, 0), 0.5f, 1e-6);
  const Tensor& th = tape.value(tape.tanh(x));
  EXPECT_NEAR(th.at(0, 2), std::tanh(2.0f), 1e-6);
  const Tensor& re = tape.value(tape.relu(x));
  EXPECT_FLOAT_EQ(re.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(re.at(0, 2), 2.0f);
  const Tensor& om = tape.value(tape.one_minus(x));
  EXPECT_FLOAT_EQ(om.at(0, 1), 2.0f);
}

TEST(TapeForward, ConcatAndSlice) {
  Tape tape;
  const ValueId a = tape.constant(Tensor::from_rows({{1.0f}, {2.0f}}));
  const ValueId b = tape.constant(Tensor::from_rows({{3.0f}, {4.0f}}));
  const ValueId cc = tape.concat_cols(a, b);
  EXPECT_EQ(tape.value(cc).cols(), 2);
  EXPECT_FLOAT_EQ(tape.value(cc).at(1, 1), 4.0f);
  const ValueId cr = tape.concat_rows({a, b});
  EXPECT_EQ(tape.value(cr).rows(), 4);
  EXPECT_FLOAT_EQ(tape.value(cr).at(3, 0), 4.0f);
  const ValueId sl = tape.slice_cols(cc, 1, 2);
  EXPECT_EQ(tape.value(sl).cols(), 1);
  EXPECT_FLOAT_EQ(tape.value(sl).at(0, 0), 3.0f);
}

TEST(TapeForward, GatherScatterSegment) {
  Tape tape;
  const ValueId a = tape.constant(
      Tensor::from_rows({{1.0f}, {2.0f}, {3.0f}}));
  const ValueId g = tape.gather_rows(a, {2, 0, 2});
  EXPECT_FLOAT_EQ(tape.value(g).at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(tape.value(g).at(2, 0), 3.0f);

  const ValueId rows = tape.constant(Tensor::from_rows({{10.0f}, {20.0f}}));
  const ValueId sc = tape.scatter_rows(a, {0, 2}, rows);
  EXPECT_FLOAT_EQ(tape.value(sc).at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(tape.value(sc).at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(tape.value(sc).at(2, 0), 20.0f);

  const ValueId seg = tape.segment_sum(a, {1, 0, 1}, 2);
  EXPECT_FLOAT_EQ(tape.value(seg).at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(tape.value(seg).at(1, 0), 4.0f);
}

TEST(TapeForward, ScatterDuplicateIndexThrows) {
  Tape tape;
  const ValueId a = tape.constant(Tensor(3, 1));
  const ValueId rows = tape.constant(Tensor(2, 1));
  EXPECT_THROW(tape.scatter_rows(a, {1, 1}, rows), std::runtime_error);
}

TEST(TapeForward, Reductions) {
  Tape tape;
  const ValueId a = tape.constant(Tensor::from_rows({{1.0f, 2.0f},
                                                     {3.0f, 4.0f}}));
  EXPECT_FLOAT_EQ(tape.value(tape.reduce_sum(a)).at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.reduce_mean(a)).at(0, 0), 2.5f);
}

TEST(TapeForward, Losses) {
  Tape tape;
  const ValueId pred = tape.constant(Tensor::from_rows({{1.0f, 3.0f}}));
  const Tensor target = Tensor::from_rows({{0.0f, 1.0f}});
  EXPECT_FLOAT_EQ(tape.value(tape.mse(pred, target)).at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(tape.value(tape.mae(pred, target)).at(0, 0), 1.5f);
  // Huber(delta=1): |1| -> 0.5, |2| -> 1*(2-0.5) = 1.5; mean = 1.0
  EXPECT_FLOAT_EQ(tape.value(tape.huber(pred, target, 1.0f)).at(0, 0), 1.0f);
}

TEST(TapeBackward, RootMustBeScalar) {
  Tape tape;
  Parameter p("p", Tensor::from_rows({{1.0f, 2.0f}}));
  const ValueId v = tape.param(p);
  EXPECT_THROW(tape.backward(v), std::runtime_error);
}

TEST(TapeBackward, SimpleChain) {
  // loss = mean((2p)^2) with p = [1, -3] → dloss/dp_i = 8 p_i / n = 4 p_i.
  Parameter p("p", Tensor::from_rows({{1.0f, -3.0f}}));
  Tape tape;
  const ValueId x = tape.scale(tape.param(p), 2.0f);
  const ValueId loss = tape.reduce_mean(tape.mul(x, x));
  p.zero_grad();
  tape.backward(loss);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(p.grad.at(0, 1), -12.0f);
}

TEST(TapeBackward, GradAccumulatesAcrossBackwards) {
  Parameter p("p", Tensor::scalar(2.0f));
  for (int i = 0; i < 2; ++i) {
    Tape tape;
    const ValueId loss = tape.reduce_sum(tape.param(p));
    tape.backward(loss);
  }
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 2.0f);  // 1 per backward
}

// --- Finite-difference checks: every op's backward ----------------------------

TEST(GradCheck, MatmulAddBias) {
  Parameter w("w", Tensor::from_rows({{0.3f, -0.2f}, {0.1f, 0.4f}}));
  Parameter b("b", Tensor::from_rows({{0.05f, -0.1f}}));
  const Tensor x = Tensor::from_rows({{1.0f, 2.0f}, {-1.0f, 0.5f},
                                      {0.3f, 0.9f}});
  const Tensor target(3, 2, 0.25f);
  expect_gradients_match({&w, &b}, [&](Tape& tape) {
    const ValueId y =
        tape.add_bias(tape.matmul(tape.constant(x), tape.param(w)),
                      tape.param(b));
    return tape.mse(y, target);
  });
}

TEST(GradCheck, ElementwiseOps) {
  Parameter a("a", Tensor::from_rows({{0.4f, -0.7f}, {1.2f, 0.1f}}));
  Parameter b("b", Tensor::from_rows({{-0.3f, 0.8f}, {0.2f, -1.1f}}));
  const Tensor target(2, 2, 0.1f);
  expect_gradients_match({&a, &b}, [&](Tape& tape) {
    const ValueId va = tape.param(a);
    const ValueId vb = tape.param(b);
    const ValueId y = tape.add(tape.mul(va, vb),
                               tape.sub(tape.one_minus(va), vb));
    return tape.mse(y, target);
  });
}

TEST(GradCheck, Nonlinearities) {
  Parameter a("a", Tensor::from_rows({{0.4f, -0.7f, 1.3f, -2.0f}}));
  const Tensor target(1, 4, 0.3f);
  expect_gradients_match({&a}, [&](Tape& tape) {
    const ValueId va = tape.param(a);
    const ValueId y =
        tape.add(tape.sigmoid(va), tape.add(tape.tanh(va), tape.relu(va)));
    return tape.mse(y, target);
  });
}

TEST(GradCheck, ConcatSliceScale) {
  Parameter a("a", Tensor::from_rows({{0.5f}, {-0.2f}}));
  Parameter b("b", Tensor::from_rows({{1.1f}, {0.7f}}));
  const Tensor target(2, 1, 0.0f);
  expect_gradients_match({&a, &b}, [&](Tape& tape) {
    const ValueId cc = tape.concat_cols(tape.param(a), tape.param(b));
    const ValueId sl = tape.slice_cols(cc, 1, 2);
    const ValueId cr = tape.concat_rows({tape.param(a), sl});
    return tape.mse(tape.scale(tape.slice_cols(cr, 0, 1), 1.5f),
                    Tensor(4, 1, 0.0f));
  });
}

TEST(GradCheck, GatherRowsWithDuplicates) {
  Parameter a("a", Tensor::from_rows({{0.5f, 1.0f}, {-0.2f, 0.3f},
                                      {0.8f, -0.9f}}));
  const Tensor target(4, 2, 0.1f);
  expect_gradients_match({&a}, [&](Tape& tape) {
    const ValueId g = tape.gather_rows(tape.param(a), {2, 0, 2, 1});
    return tape.mse(g, target);
  });
}

TEST(GradCheck, ScatterRows) {
  Parameter base("base", Tensor::from_rows({{0.5f}, {-0.2f}, {0.8f},
                                            {0.0f}}));
  Parameter rows("rows", Tensor::from_rows({{1.5f}, {-1.0f}}));
  const Tensor target(4, 1, 0.2f);
  expect_gradients_match({&base, &rows}, [&](Tape& tape) {
    const ValueId y =
        tape.scatter_rows(tape.param(base), {3, 1}, tape.param(rows));
    return tape.mse(y, target);
  });
}

TEST(TapeForward, ScaleRows) {
  Tape tape;
  const ValueId a = tape.constant(Tensor::from_rows({{1.0f, 2.0f},
                                                     {3.0f, 4.0f}}));
  const Tensor& y = tape.value(tape.scale_rows(a, {2.0f, 0.5f}));
  EXPECT_FLOAT_EQ(y.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 1.5f);
}

TEST(TapeForward, ScaleRowsWrongCountThrows) {
  Tape tape;
  const ValueId a = tape.constant(Tensor(3, 2));
  EXPECT_THROW(tape.scale_rows(a, {1.0f, 2.0f}), std::runtime_error);
}

TEST(GradCheck, ScaleRows) {
  Parameter a("a", Tensor::from_rows({{0.5f, 1.0f}, {-0.2f, 0.3f},
                                      {0.8f, -0.9f}}));
  const Tensor target(3, 2, 0.1f);
  expect_gradients_match({&a}, [&](Tape& tape) {
    return tape.mse(tape.scale_rows(tape.param(a), {2.0f, 0.0f, -1.5f}),
                    target);
  });
}

TEST(GradCheck, SegmentSum) {
  Parameter a("a", Tensor::from_rows({{0.5f, 0.1f}, {-0.2f, 0.4f},
                                      {0.8f, -0.3f}, {1.0f, 0.2f}}));
  const Tensor target(3, 2, 0.25f);
  expect_gradients_match({&a}, [&](Tape& tape) {
    const ValueId y = tape.segment_sum(tape.param(a), {2, 0, 2, 1}, 3);
    return tape.mse(y, target);
  });
}

TEST(GradCheck, ReduceAndLossVariants) {
  Parameter a("a", Tensor::from_rows({{0.5f, -1.2f}, {2.0f, 0.3f}}));
  const Tensor target = Tensor::from_rows({{0.0f, 1.0f}, {1.5f, -0.5f}});
  expect_gradients_match({&a}, [&](Tape& tape) {
    const ValueId va = tape.param(a);
    const ValueId l1 = tape.mse(va, target);
    const ValueId l2 = tape.huber(va, target, 1.0f);
    const ValueId l3 = tape.scale(tape.reduce_sum(va), 0.01f);
    return tape.add(tape.add(l1, l2), l3);
  });
}

TEST(GradCheck, MaeAwayFromKinks) {
  Parameter a("a", Tensor::from_rows({{0.5f, -1.2f}}));
  const Tensor target = Tensor::from_rows({{0.0f, 1.0f}});
  expect_gradients_match({&a}, [&](Tape& tape) {
    return tape.mae(tape.param(a), target);
  }, /*eps=*/1e-3f);
}

TEST(Dropout, ZeroRateIsIdentity) {
  Rng rng(1);
  Tape tape;
  const ValueId a = tape.constant(Tensor::from_rows({{1.0f, -2.0f}}));
  const Tensor& y = tape.value(tape.dropout(a, 0.0f, rng));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -2.0f);
}

TEST(Dropout, PreservesExpectationAndZeroesSome) {
  Rng rng(2);
  Tape tape;
  const ValueId a = tape.constant(Tensor(1, 4000, 1.0f));
  const Tensor& y = tape.value(tape.dropout(a, 0.4f, rng));
  int zeros = 0;
  double sum = 0.0;
  for (int i = 0; i < y.size(); ++i) {
    const float v = y[static_cast<std::size_t>(i)];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5);
    }
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.4, 0.03);
  EXPECT_NEAR(sum / y.size(), 1.0, 0.05);  // inverted scaling keeps E[x]
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(3);
  Parameter p("p", Tensor(1, 64, 2.0f));
  Tape tape;
  const ValueId dropped = tape.dropout(tape.param(p), 0.5f, rng);
  const ValueId loss = tape.reduce_sum(dropped);
  p.zero_grad();
  tape.backward(loss);
  const Tensor& y = tape.value(dropped);
  for (int i = 0; i < y.size(); ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (y[k] == 0.0f) {
      EXPECT_FLOAT_EQ(p.grad[k], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(p.grad[k], 2.0f);  // 1/(1-0.5)
    }
  }
}

TEST(Dropout, RejectsBadRate) {
  Rng rng(4);
  Tape tape;
  const ValueId a = tape.constant(Tensor(1, 2));
  EXPECT_THROW(tape.dropout(a, 1.0f, rng), std::runtime_error);
  EXPECT_THROW(tape.dropout(a, -0.1f, rng), std::runtime_error);
}

TEST(TapeBackward, ParameterUsedTwiceAccumulatesBothPaths) {
  // loss = sum(p) + sum(2p) → dloss/dp = 3 everywhere.
  Parameter p("p", Tensor::from_rows({{1.0f, 2.0f}}));
  Tape tape;
  const ValueId a = tape.param(p);
  const ValueId b = tape.scale(tape.param(p), 2.0f);
  const ValueId loss = tape.add(tape.reduce_sum(a), tape.reduce_sum(b));
  p.zero_grad();
  tape.backward(loss);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(p.grad.at(0, 1), 3.0f);
}

TEST(GradCheck, SharedParameterAcrossBranches) {
  Parameter p("p", Tensor::from_rows({{0.4f, -0.3f}, {0.2f, 0.9f}}));
  const Tensor target(2, 2, 0.1f);
  expect_gradients_match({&p}, [&](Tape& tape) {
    const ValueId a = tape.param(p);
    const ValueId b = tape.tanh(tape.param(p));
    return tape.mse(tape.mul(a, b), target);
  });
}

TEST(TapeForward, IndexOutOfRangeThrows) {
  Tape tape;
  const ValueId a = tape.constant(Tensor(3, 2));
  EXPECT_THROW(tape.gather_rows(a, {0, 3}), std::runtime_error);
  EXPECT_THROW(tape.gather_rows(a, {-1}), std::runtime_error);
  EXPECT_THROW(tape.segment_sum(a, {0, 1, 5}, 3), std::runtime_error);
  EXPECT_THROW(tape.segment_sum(a, {0, 1}, 3), std::runtime_error);  // size
  const ValueId rows = tape.constant(Tensor(1, 2));
  EXPECT_THROW(tape.scatter_rows(a, {4}, rows), std::runtime_error);
  EXPECT_THROW(tape.slice_cols(a, 1, 3), std::runtime_error);
}

TEST(TapeForward, MatmulMismatchThrows) {
  Tape tape;
  const ValueId a = tape.constant(Tensor(2, 3));
  const ValueId b = tape.constant(Tensor(2, 3));
  EXPECT_THROW(tape.matmul(a, b), std::runtime_error);
  const ValueId bias = tape.constant(Tensor(1, 4));
  EXPECT_THROW(tape.add_bias(a, bias), std::runtime_error);
}

TEST(TapeBackward, SecondBackwardOnSameTapeResetsNodeGrads) {
  Parameter p("p", Tensor::scalar(3.0f));
  Tape tape;
  const ValueId v = tape.param(p);
  const ValueId loss = tape.reduce_mean(tape.mul(v, v));
  p.zero_grad();
  tape.backward(loss);
  const float g1 = p.grad.at(0, 0);
  tape.backward(loss);  // node grads reset; parameter grads accumulate
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 2.0f * g1);
}

TEST(TapeForward, ValueReferencesSurviveLaterOps) {
  // Nodes live in a deque: references from value() must stay valid while
  // hundreds of further ops are recorded.
  Tape tape;
  const ValueId a = tape.constant(Tensor::from_rows({{7.5f}}));
  const Tensor& ref = tape.value(a);
  for (int i = 0; i < 500; ++i) {
    tape.constant(Tensor(4, 4, static_cast<float>(i)));
  }
  EXPECT_FLOAT_EQ(ref.at(0, 0), 7.5f);
}

TEST(TapeBackward, ConstantsReceiveNoGradientWork) {
  // A graph of pure constants must not blow up in backward (nothing needs
  // grad except the root chain).
  Tape tape;
  const ValueId a = tape.constant(Tensor(3, 3, 1.0f));
  const ValueId loss = tape.reduce_mean(tape.mul(a, a));
  tape.backward(loss);  // no throw
  EXPECT_EQ(tape.grad(a).size(), 0);  // never allocated
}

}  // namespace
}  // namespace rn::ag
