// RNCKPT2 container tests: full round-trip fidelity, atomic writes,
// rotation naming, and the newest-valid fallback used by --resume.
#include "ag/serialize.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace rn::ag {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void remove_base(const std::string& base) {
  for (const CheckpointFile& f : list_checkpoints(base)) {
    std::remove(f.path.c_str());
  }
  std::remove(base.c_str());
}

std::string engine_state_after(int draws) {
  std::mt19937_64 engine(1234);
  for (int i = 0; i < draws; ++i) engine();
  std::ostringstream os;
  os << engine;
  return os.str();
}

TrainCheckpoint sample_checkpoint() {
  TrainCheckpoint ck;
  ck.params.emplace_back("layer.w",
                         Tensor::from_rows({{1.5f, -2.0f}, {0.25f, 3.0f}}));
  ck.params.emplace_back("layer.b", Tensor::from_rows({{0.1f, 0.2f}}));
  ck.has_optimizer = true;
  ck.adam_step = 17;
  ck.lr = 3.5e-3f;
  ck.adam_m.emplace_back("layer.w",
                         Tensor::from_rows({{0.01f, 0.02f}, {0.03f, 0.04f}}));
  ck.adam_m.emplace_back("layer.b", Tensor::from_rows({{0.05f, 0.06f}}));
  ck.adam_v.emplace_back("layer.w",
                         Tensor::from_rows({{1e-4f, 2e-4f}, {3e-4f, 4e-4f}}));
  ck.adam_v.emplace_back("layer.b", Tensor::from_rows({{5e-4f, 6e-4f}}));
  ck.rng_streams.emplace_back("shuffle", engine_state_after(3));
  ck.rng_streams.emplace_back("dropout", engine_state_after(11));
  ck.has_cursor = true;
  ck.epoch = 2;
  ck.next_index = 4;
  ck.total_batches = 23;
  ck.best_eval_mre = 0.181;
  ck.best_epoch = 1;
  ck.epochs_since_best = 1;
  ck.epoch_loss_sum = 3.25;
  ck.epoch_batches = 2;
  ck.epoch_samples = 4;
  ck.order = {3, 0, 2, 1, 4, 5};
  return ck;
}

void expect_tensors_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.same_shape(b));
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           sizeof(float) * static_cast<std::size_t>(a.size())));
}

TEST(Checkpoint, FullRoundTrip) {
  const TrainCheckpoint ck = sample_checkpoint();
  const std::string path = temp_path("full_roundtrip.ckpt2");
  const std::size_t bytes = save_train_checkpoint(path, ck);
  EXPECT_GT(bytes, 0u);

  const TrainCheckpoint got = load_train_checkpoint(path);
  ASSERT_EQ(got.params.size(), ck.params.size());
  for (std::size_t i = 0; i < ck.params.size(); ++i) {
    EXPECT_EQ(got.params[i].first, ck.params[i].first);
    expect_tensors_bitwise_equal(got.params[i].second, ck.params[i].second);
  }
  ASSERT_TRUE(got.has_optimizer);
  EXPECT_EQ(got.adam_step, ck.adam_step);
  EXPECT_EQ(got.lr, ck.lr);
  ASSERT_EQ(got.adam_m.size(), ck.adam_m.size());
  for (std::size_t i = 0; i < ck.adam_m.size(); ++i) {
    EXPECT_EQ(got.adam_m[i].first, ck.adam_m[i].first);
    expect_tensors_bitwise_equal(got.adam_m[i].second, ck.adam_m[i].second);
    expect_tensors_bitwise_equal(got.adam_v[i].second, ck.adam_v[i].second);
  }
  ASSERT_EQ(got.rng_streams.size(), ck.rng_streams.size());
  EXPECT_EQ(got.rng_streams[0], ck.rng_streams[0]);
  EXPECT_EQ(got.rng_streams[1], ck.rng_streams[1]);
  ASSERT_TRUE(got.has_cursor);
  EXPECT_EQ(got.epoch, ck.epoch);
  EXPECT_EQ(got.next_index, ck.next_index);
  EXPECT_EQ(got.total_batches, ck.total_batches);
  EXPECT_EQ(got.best_eval_mre, ck.best_eval_mre);
  EXPECT_EQ(got.best_epoch, ck.best_epoch);
  EXPECT_EQ(got.epochs_since_best, ck.epochs_since_best);
  EXPECT_EQ(got.epoch_loss_sum, ck.epoch_loss_sum);
  EXPECT_EQ(got.epoch_batches, ck.epoch_batches);
  EXPECT_EQ(got.epoch_samples, ck.epoch_samples);
  EXPECT_EQ(got.order, ck.order);
}

TEST(Checkpoint, RestoredRngStateContinuesTheStream) {
  std::mt19937_64 reference(99);
  for (int i = 0; i < 7; ++i) reference();
  std::ostringstream os;
  os << reference;

  TrainCheckpoint ck = sample_checkpoint();
  ck.rng_streams = {{"shuffle", os.str()}};
  const std::string path = temp_path("rng_stream.ckpt2");
  save_train_checkpoint(path, ck);
  const TrainCheckpoint got = load_train_checkpoint(path);

  std::mt19937_64 restored;
  std::istringstream is(got.rng_streams[0].second);
  is >> restored;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored(), reference());
  }
}

TEST(Checkpoint, AtomicSaveLeavesNoTempFile) {
  const std::string path = temp_path("atomic.ckpt2");
  save_train_checkpoint(path, sample_checkpoint());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Checkpoint, Rnckpt1ReadsAsParamsOnlyV1) {
  Parameter a("layer.w", Tensor::from_rows({{1.0f, 2.0f}}));
  Parameter b("layer.b", Tensor::scalar(-4.0f));
  const std::string path = temp_path("v1_compat.ckpt");
  save_parameters(path, {&a, &b});

  const TrainCheckpoint got = load_train_checkpoint(path);
  EXPECT_FALSE(got.has_optimizer);
  EXPECT_FALSE(got.has_cursor);
  EXPECT_TRUE(got.rng_streams.empty());
  ASSERT_EQ(got.params.size(), 2u);
  EXPECT_EQ(got.params[0].first, "layer.w");
  expect_tensors_bitwise_equal(got.params[0].second, a.value);
  expect_tensors_bitwise_equal(got.params[1].second, b.value);
}

TEST(Checkpoint, RotationNamesAndListsNewestFirst) {
  const std::string base = temp_path("rotation.ckpt");
  remove_base(base);
  EXPECT_EQ(checkpoint_file_name(base, 7), base + ".000007");
  for (std::uint64_t seq : {3u, 1u, 12u}) {
    save_train_checkpoint(checkpoint_file_name(base, seq),
                          sample_checkpoint());
  }
  const std::vector<CheckpointFile> files = list_checkpoints(base);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].seq, 12u);
  EXPECT_EQ(files[1].seq, 3u);
  EXPECT_EQ(files[2].seq, 1u);
  remove_base(base);
}

TEST(Checkpoint, AutoLoadFallsBackWhenNewestIsCorrupt) {
  const std::string base = temp_path("fallback.ckpt");
  remove_base(base);
  TrainCheckpoint older = sample_checkpoint();
  older.total_batches = 4;
  save_train_checkpoint(checkpoint_file_name(base, 1), older);
  TrainCheckpoint newer = sample_checkpoint();
  newer.total_batches = 6;
  save_train_checkpoint(checkpoint_file_name(base, 2), newer);

  // Flip one payload byte of the newest file: CRC must reject it and the
  // loader must quietly fall back to seq 1.
  const std::string newest = checkpoint_file_name(base, 2);
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char c = 0;
    f.seekg(32);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0xff);
    f.seekp(32);
    f.write(&c, 1);
  }
  EXPECT_THROW(load_train_checkpoint(newest), std::runtime_error);

  std::string loaded_path;
  int fallbacks = -1;
  const TrainCheckpoint got =
      load_train_checkpoint_auto(base, &loaded_path, &fallbacks);
  EXPECT_EQ(got.total_batches, 4u);
  EXPECT_EQ(loaded_path, checkpoint_file_name(base, 1));
  EXPECT_EQ(fallbacks, 1);
  remove_base(base);
}

TEST(Checkpoint, AutoLoadExplicitFileDoesNotFallBack) {
  const std::string path = temp_path("explicit_corrupt.ckpt2");
  save_train_checkpoint(path, sample_checkpoint());
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "trailing garbage";
  }
  EXPECT_THROW(load_train_checkpoint_auto(path), std::runtime_error);
}

TEST(Checkpoint, AutoLoadThrowsWhenNothingExists) {
  const std::string base = temp_path("nothing_here.ckpt");
  remove_base(base);
  EXPECT_THROW(load_train_checkpoint_auto(base), std::runtime_error);
}

TEST(Checkpoint, AutoLoadThrowsWhenAllCandidatesCorrupt) {
  const std::string base = temp_path("all_corrupt.ckpt");
  remove_base(base);
  for (std::uint64_t seq : {1u, 2u}) {
    std::ofstream f(checkpoint_file_name(base, seq), std::ios::binary);
    f << "RNCKPT2\nnot really a checkpoint";
  }
  EXPECT_THROW(load_train_checkpoint_auto(base), std::runtime_error);
  remove_base(base);
}

TEST(Checkpoint, Crc32MatchesKnownVector) {
  // The classic zlib test vector: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xcbf43926u);
}

}  // namespace
}  // namespace rn::ag
