// Workspace-arena contract tests: warm loops allocate nothing fresh,
// pooled (dirty) memory is re-zeroed by the zero ctor, trim drops the
// free lists, disabled mode still behaves, and buffers may be freed from
// threads other than the one that allocated them (tsan-labelled).
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ag/arena.h"
#include "ag/tensor.h"

namespace {

using rn::ag::Tensor;

class ArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = rn::ag::arena_enabled();
    rn::ag::set_arena_enabled(true);
  }
  void TearDown() override { rn::ag::set_arena_enabled(was_enabled_); }
  bool was_enabled_ = true;
};

TEST_F(ArenaTest, WarmLoopPerformsZeroFreshAllocations) {
  // Warm-up: tour every shape the loop will use so the free lists hold a
  // buffer for each size class.
  auto loop_body = [] {
    Tensor a(12, 32);
    Tensor b(32, 32);
    a.fill(1.0f);
    b.fill(2.0f);
    Tensor c = rn::ag::matmul(a, b);
    Tensor d = std::move(c);
    Tensor e(3, 5, 0.25f);
    (void)d;
    (void)e;
  };
  for (int i = 0; i < 3; ++i) loop_body();

  const std::uint64_t fresh_before = rn::ag::tensor_fresh_allocs();
  const std::uint64_t reuses_before = rn::ag::arena_stats().reuses;
  for (int i = 0; i < 100; ++i) loop_body();
  EXPECT_EQ(rn::ag::tensor_fresh_allocs(), fresh_before)
      << "steady-state loop allocated fresh tensor storage";
  EXPECT_GT(rn::ag::arena_stats().reuses, reuses_before);
}

TEST_F(ArenaTest, PooledBufferIsReZeroedByZeroConstructor) {
  // Dirty a buffer, return it to the pool, take it back through the
  // zeroing ctor: every element must be 0 (pooled memory is NOT fresh).
  for (int round = 0; round < 4; ++round) {
    {
      Tensor dirty(9, 17);
      dirty.fill(31337.0f);
    }
    Tensor clean(9, 17);
    for (int i = 0; i < clean.size(); ++i) {
      ASSERT_EQ(clean[static_cast<std::size_t>(i)], 0.0f)
          << "round " << round << " element " << i;
    }
  }
}

TEST_F(ArenaTest, FillConstructorHonorsPooledMemoryToo) {
  {
    Tensor dirty(4, 4);
    dirty.fill(-1.0f);
  }
  Tensor filled(4, 4, 2.5f);
  for (int i = 0; i < filled.size(); ++i) {
    EXPECT_EQ(filled[static_cast<std::size_t>(i)], 2.5f);
  }
}

TEST_F(ArenaTest, TrimReleasesFreeListedBytes) {
  {
    std::vector<Tensor> hoard;
    for (int i = 0; i < 16; ++i) hoard.emplace_back(64, 64);
  }  // all returned to this thread's free lists
  const std::uint64_t held_before = rn::ag::arena_stats().bytes_held;
  EXPECT_GT(held_before, 0u);
  rn::ag::arena_trim();
  EXPECT_LT(rn::ag::arena_stats().bytes_held, held_before);
}

TEST_F(ArenaTest, DisabledModeAllocatesFreshEveryTime) {
  rn::ag::set_arena_enabled(false);
  Tensor warm(6, 6);  // shape seen while disabled
  (void)warm;
  const std::uint64_t before = rn::ag::tensor_fresh_allocs();
  for (int i = 0; i < 8; ++i) {
    Tensor t(6, 6);
    t.fill(1.0f);
    EXPECT_EQ(t.at(0, 0), 1.0f);
  }
  EXPECT_GE(rn::ag::tensor_fresh_allocs(), before + 8);
}

TEST_F(ArenaTest, OversizedAllocationsBypassPoolSafely) {
  // Beyond the largest size class: plain heap, works and dies cleanly.
  Tensor big(1, 1 << 22);
  big.fill(3.0f);
  EXPECT_EQ(big.at(0, big.cols() - 1), 3.0f);
}

// Tensors may be created on one thread and destroyed on another (tape
// values crossing the pool, server batches). The origin arena takes the
// return under its mutex; nothing may race or leak. Runs under -L tsan.
TEST_F(ArenaTest, CrossThreadFreeIsSafeUnderContention) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::vector<Tensor>> made(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&made, t] {
        for (int i = 0; i < 8; ++i) {
          Tensor x(7, 9, static_cast<float>(t));
          made[static_cast<std::size_t>(t)].push_back(std::move(x));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (auto& batch : made) {
      for (Tensor& t : batch) {
        ASSERT_EQ(t.rows(), 7);
        ASSERT_EQ(t.cols(), 9);
      }
    }
    // All tensors destroyed here, on the main thread — every buffer
    // returns cross-thread to its origin core.
  }
  EXPECT_GT(rn::ag::arena_stats().returns, 0u);
}

TEST_F(ArenaTest, BufferSurvivesOriginThreadDeath) {
  Tensor escaped;
  std::thread t([&escaped] { escaped = Tensor(11, 13, 4.0f); });
  t.join();
  // The origin thread is gone; the buffer (and its core) must still be
  // valid, and destruction must not touch freed memory.
  EXPECT_EQ(escaped.at(10, 12), 4.0f);
  escaped = Tensor();
}

}  // namespace
