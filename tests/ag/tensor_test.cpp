#include "ag/tensor.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rn::ag {
namespace {

// Textbook triple loop: the reference the blocked kernels must match.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int p = 0; p < a.cols(); ++p) acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

Tensor random_tensor(int rows, int cols, Rng& rng) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(t.at(r, c), 0.0f);
  }
}

TEST(Tensor, FillConstructorAndScalar) {
  const Tensor t(2, 2, 3.5f);
  EXPECT_EQ(t.at(1, 1), 3.5f);
  const Tensor s = Tensor::scalar(-2.0f);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_EQ(s.at(0, 0), -2.0f);
}

TEST(Tensor, FromRowsLiteral) {
  const Tensor t = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, FromRowsRaggedThrows) {
  EXPECT_THROW(Tensor::from_rows({{1.0f, 2.0f}, {3.0f}}), std::runtime_error);
}

TEST(Tensor, ColumnVector) {
  const Tensor t = Tensor::column({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 1);
  EXPECT_EQ(t.at(2, 0), 3.0f);
}

TEST(Tensor, AtOutOfRangeThrows) {
  Tensor t(2, 2);
  EXPECT_THROW(t.at(2, 0), std::runtime_error);
  EXPECT_THROW(t.at(0, -1), std::runtime_error);
}

TEST(Tensor, AddScaledAndScale) {
  Tensor a = Tensor::from_rows({{1.0f, 2.0f}});
  const Tensor b = Tensor::from_rows({{10.0f, 20.0f}});
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 12.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 12.0f);
}

TEST(Tensor, AddScaledShapeMismatchThrows) {
  Tensor a(2, 2);
  const Tensor b(2, 3);
  EXPECT_THROW(a.add_scaled(b, 1.0f), std::runtime_error);
}

TEST(Tensor, SquaredNorm) {
  const Tensor t = Tensor::from_rows({{3.0f, 4.0f}});
  EXPECT_DOUBLE_EQ(t.squared_norm(), 25.0);
}

TEST(Matmul, KnownProduct) {
  const Tensor a = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  const Tensor b = Tensor::from_rows({{5.0f, 6.0f}, {7.0f, 8.0f}});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, DimensionMismatchThrows) {
  const Tensor a(2, 3);
  const Tensor b(2, 3);
  EXPECT_THROW(matmul(a, b), std::runtime_error);
}

TEST(Matmul, TransposedVariantsAgree) {
  const Tensor a = Tensor::from_rows({{1.0f, -2.0f, 0.5f},
                                      {2.0f, 0.0f, 1.0f}});
  const Tensor b = Tensor::from_rows({{3.0f, 1.0f}, {0.0f, 2.0f}});
  // matmul_tn(a, b) == aᵀ b : (3×2)·(2×2) → 3×2
  const Tensor at_b = matmul_tn(a, b);
  // Build aᵀ explicitly and compare.
  Tensor at(3, 2);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  const Tensor expect = matmul(at, b);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(at_b.at(r, c), expect.at(r, c));
    }
  }
  // matmul_nt(b, a) == b aᵀ : (2×2)·(2×3) → 2×3
  const Tensor b_at = matmul_nt(b, at);
  const Tensor expect2 = matmul(b, a);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(b_at.at(r, c), expect2.at(r, c));
    }
  }
}

// The blocked kernels tile over rows and the inner dimension; exercise
// shapes that are not multiples of any tile size against the naive loop.
TEST(Matmul, BlockedKernelsMatchNaiveOnOddShapes) {
  Rng rng(3);
  const int shapes[][3] = {{1, 1, 1},   {5, 3, 2},    {33, 31, 7},
                           {65, 240, 3}, {70, 241, 37}, {129, 65, 33}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const Tensor a = random_tensor(m, k, rng);
    const Tensor b = random_tensor(k, n, rng);
    const Tensor expect = naive_matmul(a, b);
    const Tensor c = matmul(a, b);
    ASSERT_TRUE(c.same_shape(expect));
    for (int i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-4f)
          << m << "x" << k << "x" << n << " element " << i;
    }

    // aᵀ shaped (k, m): matmul_tn(aT, b) must equal a b as well.
    Tensor at(k, m);
    for (int r = 0; r < m; ++r) {
      for (int col = 0; col < k; ++col) at.at(col, r) = a.at(r, col);
    }
    const Tensor c_tn = matmul_tn(at, b);
    for (int i = 0; i < c_tn.size(); ++i) {
      ASSERT_NEAR(c_tn[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-4f);
    }

    // bᵀ shaped (n, k): matmul_nt(a, bT) must equal a b too.
    Tensor bt(n, k);
    for (int r = 0; r < k; ++r) {
      for (int col = 0; col < n; ++col) bt.at(col, r) = b.at(r, col);
    }
    const Tensor c_nt = matmul_nt(a, bt);
    for (int i = 0; i < c_nt.size(); ++i) {
      ASSERT_NEAR(c_nt[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-4f);
    }
  }
}

TEST(Matmul, ParallelThresholdRoundTrips) {
  const long long saved = matmul_parallel_threshold();
  set_matmul_parallel_threshold(12345);
  EXPECT_EQ(matmul_parallel_threshold(), 12345);
  set_matmul_parallel_threshold(saved);
}

TEST(Matmul, NtTileThresholdRoundTrips) {
  const long long saved = matmul_nt_tile_threshold();
  set_matmul_nt_tile_threshold(777);
  EXPECT_EQ(matmul_nt_tile_threshold(), 777);
  set_matmul_nt_tile_threshold(-5);  // clamped, never negative
  EXPECT_EQ(matmul_nt_tile_threshold(), 0);
  set_matmul_nt_tile_threshold(saved);
}

TEST(Matmul, IdentityIsNeutral) {
  const Tensor a = Tensor::from_rows({{1.5f, -2.0f}, {0.0f, 4.0f}});
  Tensor id(2, 2);
  id.at(0, 0) = 1.0f;
  id.at(1, 1) = 1.0f;
  const Tensor c = matmul(a, id);
  for (int r = 0; r < 2; ++r) {
    for (int col = 0; col < 2; ++col) {
      EXPECT_FLOAT_EQ(c.at(r, col), a.at(r, col));
    }
  }
}

}  // namespace
}  // namespace rn::ag
