#include "ag/serialize.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace rn::ag {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(Serialize, RoundTripPreservesValues) {
  Parameter a("layer.w", Tensor::from_rows({{1.5f, -2.0f}, {0.25f, 3.0f}}));
  Parameter b("layer.b", Tensor::from_rows({{0.1f, 0.2f}}));
  const std::string path = temp_path("roundtrip.ckpt");
  save_parameters(path, {&a, &b});

  Parameter a2("layer.w", Tensor(2, 2));
  Parameter b2("layer.b", Tensor(1, 2));
  load_parameters(path, {&a2, &b2});
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a2.value[static_cast<std::size_t>(i)],
                    a.value[static_cast<std::size_t>(i)]);
  }
  EXPECT_FLOAT_EQ(b2.value.at(0, 1), 0.2f);
}

TEST(Serialize, LoadByNameIgnoresOrder) {
  Parameter a("first", Tensor::scalar(1.0f));
  Parameter b("second", Tensor::scalar(2.0f));
  const std::string path = temp_path("order.ckpt");
  save_parameters(path, {&a, &b});
  Parameter b2("second", Tensor::scalar(0.0f));
  Parameter a2("first", Tensor::scalar(0.0f));
  load_parameters(path, {&b2, &a2});
  EXPECT_FLOAT_EQ(a2.value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b2.value.at(0, 0), 2.0f);
}

TEST(Serialize, MissingParameterThrows) {
  Parameter a("present", Tensor::scalar(1.0f));
  const std::string path = temp_path("missing.ckpt");
  save_parameters(path, {&a});
  Parameter ghost("ghost", Tensor::scalar(0.0f));
  EXPECT_THROW(load_parameters(path, {&ghost}), std::runtime_error);
}

TEST(Serialize, MissingParameterErrorNamesParameterAndShape) {
  Parameter a("present", Tensor::scalar(1.0f));
  const std::string path = temp_path("missing_msg.ckpt");
  save_parameters(path, {&a});
  Parameter ghost("ghost", Tensor::scalar(0.0f));
  try {
    load_parameters(path, {&ghost});
    FAIL() << "expected a missing-parameter error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'ghost'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1x1"), std::string::npos) << msg;
  }
}

TEST(Serialize, ShapeMismatchThrows) {
  Parameter a("p", Tensor(2, 2));
  const std::string path = temp_path("shape.ckpt");
  save_parameters(path, {&a});
  Parameter wrong("p", Tensor(2, 3));
  EXPECT_THROW(load_parameters(path, {&wrong}), std::runtime_error);
}

TEST(Serialize, ShapeMismatchErrorNamesParameterAndBothShapes) {
  Parameter a("p", Tensor(2, 2));
  const std::string path = temp_path("shape_msg.ckpt");
  save_parameters(path, {&a});
  Parameter wrong("p", Tensor(2, 3));
  try {
    load_parameters(path, {&wrong});
    FAIL() << "expected a shape-mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'p'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2x2"), std::string::npos) << msg;  // checkpoint shape
    EXPECT_NE(msg.find("2x3"), std::string::npos) << msg;  // model shape
  }
}

TEST(Serialize, BadMagicThrows) {
  const std::string path = temp_path("garbage.ckpt");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint at all", f);
    std::fclose(f);
  }
  Parameter p("p", Tensor::scalar(0.0f));
  EXPECT_THROW(load_parameters(path, {&p}), std::runtime_error);
}

TEST(Serialize, NonexistentFileThrows) {
  Parameter p("p", Tensor::scalar(0.0f));
  EXPECT_THROW(load_parameters("/nonexistent/dir/x.ckpt", {&p}),
               std::runtime_error);
}

}  // namespace
}  // namespace rn::ag
