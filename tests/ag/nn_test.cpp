#include "ag/nn.h"

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ag/optim.h"
#include "gradcheck.h"
#include "util/rng.h"

namespace rn::ag {
namespace {

using rn::testing::expect_gradients_match;

TEST(Dense, OutputShapeAndDeterminism) {
  Rng rng1(3), rng2(3);
  Dense d1(4, 3, Activation::kRelu, rng1, "d");
  Dense d2(4, 3, Activation::kRelu, rng2, "d");
  Tape tape;
  const ValueId x = tape.constant(Tensor(5, 4, 0.5f));
  const Tensor& y1 = tape.value(d1.apply(tape, x));
  const Tensor& y2 = tape.value(d2.apply(tape, x));
  EXPECT_EQ(y1.rows(), 5);
  EXPECT_EQ(y1.cols(), 3);
  for (int i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1[static_cast<std::size_t>(i)],
                    y2[static_cast<std::size_t>(i)]);
  }
}

TEST(Dense, ReluClampsNegative) {
  Rng rng(3);
  Dense d(2, 2, Activation::kRelu, rng, "d");
  Tape tape;
  const Tensor& y = tape.value(d.apply(tape, tape.constant(Tensor(3, 2, 1.0f))));
  for (int i = 0; i < y.size(); ++i) {
    EXPECT_GE(y[static_cast<std::size_t>(i)], 0.0f);
  }
}

TEST(Dense, SigmoidBounded) {
  Rng rng(4);
  Dense d(3, 3, Activation::kSigmoid, rng, "d");
  Tape tape;
  const Tensor& y =
      tape.value(d.apply(tape, tape.constant(Tensor(2, 3, 5.0f))));
  for (int i = 0; i < y.size(); ++i) {
    EXPECT_GT(y[static_cast<std::size_t>(i)], 0.0f);
    EXPECT_LT(y[static_cast<std::size_t>(i)], 1.0f);
  }
}

TEST(Dense, GradCheck) {
  Rng rng(5);
  Dense d(3, 2, Activation::kTanh, rng, "d");
  const Tensor x = Tensor::from_rows({{0.2f, -0.5f, 0.9f},
                                      {1.0f, 0.3f, -0.2f}});
  const Tensor target(2, 2, 0.1f);
  expect_gradients_match(d.params(), [&](Tape& tape) {
    return tape.mse(d.apply(tape, tape.constant(x)), target);
  });
}

TEST(GruCell, HiddenStateShapeAndRange) {
  Rng rng(6);
  GruCell cell(3, 4, rng, "gru");
  EXPECT_EQ(cell.input_dim(), 3);
  EXPECT_EQ(cell.hidden_dim(), 4);
  Tape tape;
  const ValueId x = tape.constant(Tensor(5, 3, 0.5f));
  const ValueId h = tape.constant(Tensor(5, 4, 0.0f));
  const Tensor& h2 = tape.value(cell.step(tape, x, h));
  EXPECT_EQ(h2.rows(), 5);
  EXPECT_EQ(h2.cols(), 4);
  // GRU output is a convex combination of h (0) and tanh-bounded candidate.
  for (int i = 0; i < h2.size(); ++i) {
    EXPECT_GT(h2[static_cast<std::size_t>(i)], -1.0f);
    EXPECT_LT(h2[static_cast<std::size_t>(i)], 1.0f);
  }
}

TEST(GruCell, ZeroUpdateGateKeepsState) {
  Rng rng(7);
  GruCell cell(2, 2, rng, "gru");
  // Force z ≈ 0 by driving the update-gate bias very negative.
  for (Parameter* p : cell.params()) {
    if (p->name == "gru.bz") p->value.fill(-50.0f);
  }
  Tape tape;
  const Tensor h0 = Tensor::from_rows({{0.3f, -0.4f}});
  const ValueId h2 = cell.step(tape, tape.constant(Tensor(1, 2, 1.0f)),
                               tape.constant(h0));
  EXPECT_NEAR(tape.value(h2).at(0, 0), 0.3f, 1e-4);
  EXPECT_NEAR(tape.value(h2).at(0, 1), -0.4f, 1e-4);
}

TEST(GruCell, GradCheckThroughTwoSteps) {
  Rng rng(8);
  GruCell cell(2, 3, rng, "gru");
  const Tensor x1 = Tensor::from_rows({{0.4f, -0.2f}, {0.1f, 0.8f}});
  const Tensor x2 = Tensor::from_rows({{-0.5f, 0.3f}, {0.7f, 0.2f}});
  const Tensor target(2, 3, 0.2f);
  expect_gradients_match(cell.params(), [&](Tape& tape) {
    ValueId h = tape.constant(Tensor(2, 3, 0.0f));
    h = cell.step(tape, tape.constant(x1), h);
    h = cell.step(tape, tape.constant(x2), h);
    return tape.mse(h, target);
  });
}

TEST(Mlp, DimsAndParamCount) {
  Rng rng(9);
  Mlp mlp({4, 8, 8, 2}, rng, "mlp");
  EXPECT_EQ(mlp.in_dim(), 4);
  EXPECT_EQ(mlp.out_dim(), 2);
  // 3 layers × (W, b).
  EXPECT_EQ(mlp.params().size(), 6u);
}

TEST(Mlp, GradCheck) {
  Rng rng(10);
  Mlp mlp({2, 4, 1}, rng, "mlp");
  const Tensor x = Tensor::from_rows({{0.3f, -0.8f}, {1.2f, 0.4f},
                                      {-0.1f, 0.9f}});
  const Tensor target(3, 1, 0.5f);
  expect_gradients_match(mlp.params(), [&](Tape& tape) {
    return tape.mse(mlp.apply(tape, tape.constant(x)), target);
  });
}

// Parameterized over the activation set: output ranges and gradients.
class ActivationSweep : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationSweep, OutputRangeMatchesActivation) {
  Rng rng(21);
  Dense d(3, 4, GetParam(), rng, "d");
  Tape tape;
  Tensor x(6, 3);
  Rng data_rng(22);
  for (int i = 0; i < x.size(); ++i) {
    x[static_cast<std::size_t>(i)] =
        static_cast<float>(data_rng.uniform(-3.0, 3.0));
  }
  const Tensor& y = tape.value(d.apply(tape, tape.constant(x)));
  for (int i = 0; i < y.size(); ++i) {
    const float v = y[static_cast<std::size_t>(i)];
    switch (GetParam()) {
      case Activation::kRelu:
        EXPECT_GE(v, 0.0f);
        break;
      case Activation::kSigmoid:
        EXPECT_GT(v, 0.0f);
        EXPECT_LT(v, 1.0f);
        break;
      case Activation::kTanh:
        EXPECT_GT(v, -1.0f);
        EXPECT_LT(v, 1.0f);
        break;
      case Activation::kNone:
        break;  // unbounded
    }
  }
}

TEST_P(ActivationSweep, GradCheck) {
  Rng rng(23);
  Dense d(2, 3, GetParam(), rng, "d");
  const Tensor x = Tensor::from_rows({{0.4f, -0.9f}, {1.1f, 0.2f}});
  const Tensor target(2, 3, 0.2f);
  rn::testing::expect_gradients_match(d.params(), [&](Tape& tape) {
    return tape.mse(d.apply(tape, tape.constant(x)), target);
  });
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationSweep,
                         ::testing::Values(Activation::kNone,
                                           Activation::kRelu,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

// Restores the process-wide fused-GRU flag no matter how the test exits.
class FusedGruGuard {
 public:
  FusedGruGuard() : saved_(fused_gru_enabled()) {}
  ~FusedGruGuard() { set_fused_gru(saved_); }

 private:
  bool saved_;
};

Tensor random_tensor(int rows, int cols, unsigned seed) {
  Rng rng(seed);
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

TEST(FusedGru, ForwardBitwiseIdenticalToComposed) {
  FusedGruGuard guard;
  Rng rng(30);
  GruCell cell(5, 7, rng, "gru");
  const Tensor x = random_tensor(11, 5, 31);
  const Tensor h = random_tensor(11, 7, 32);
  auto run = [&](bool fused) {
    set_fused_gru(fused);
    Tape tape;
    return tape.value(cell.step(tape, tape.constant(x), tape.constant(h)));
  };
  EXPECT_TRUE(bitwise_equal(run(false), run(true)))
      << "fused gru_step diverges from the composed op chain";
}

TEST(FusedGru, SingleNodeReplacesComposedChain) {
  FusedGruGuard guard;
  Rng rng(33);
  GruCell cell(3, 4, rng, "gru");
  const Tensor x = random_tensor(2, 3, 34);
  const Tensor h = random_tensor(2, 4, 35);
  set_fused_gru(true);
  Tape fused_tape;
  cell.step(fused_tape, fused_tape.constant(x), fused_tape.constant(h));
  set_fused_gru(false);
  Tape composed_tape;
  cell.step(composed_tape, composed_tape.constant(x),
            composed_tape.constant(h));
  // 2 constants + 1 gru node, vs the ~20-node composed expression.
  EXPECT_EQ(fused_tape.num_nodes(), 3u);
  EXPECT_GT(composed_tape.num_nodes(), 10u);
}

TEST(FusedGru, ParameterGradientsMatchComposedBackward) {
  FusedGruGuard guard;
  Rng rng(36);
  GruCell cell(4, 6, rng, "gru");
  const Tensor x = random_tensor(9, 4, 37);
  const Tensor h = random_tensor(9, 6, 38);
  const Tensor target(9, 6, 0.1f);
  auto grads = [&](bool fused) {
    set_fused_gru(fused);
    for (Parameter* p : cell.params()) p->zero_grad();
    Tape tape;
    const ValueId out =
        cell.step(tape, tape.constant(x), tape.constant(h));
    tape.backward(tape.mse(out, target));
    std::vector<Tensor> out_grads;
    for (Parameter* p : cell.params()) out_grads.push_back(p->grad);
    return out_grads;
  };
  const std::vector<Tensor> composed = grads(false);
  const std::vector<Tensor> fused = grads(true);
  const std::vector<Parameter*> params = cell.params();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    for (int i = 0; i < composed[pi].size(); ++i) {
      const auto k = static_cast<std::size_t>(i);
      EXPECT_NEAR(fused[pi][k], composed[pi][k],
                  1e-5f * (1.0f + std::abs(composed[pi][k])))
          << "param " << params[pi]->name << " element " << i;
    }
  }
}

TEST(FusedGru, GradCheckThroughFusedStep) {
  FusedGruGuard guard;
  set_fused_gru(true);
  Rng rng(39);
  GruCell cell(2, 3, rng, "gru");
  const Tensor x = random_tensor(3, 2, 40);
  const Tensor target(3, 3, 0.2f);
  expect_gradients_match(cell.params(), [&](Tape& tape) {
    ValueId h = tape.constant(Tensor(3, 3, 0.0f));
    h = cell.step(tape, tape.constant(x), h);
    return tape.mse(h, target);
  });
}

TEST(FusedGru, GatheredStepMatchesGatherThenStepBitwise) {
  FusedGruGuard guard;
  Rng rng(41);
  GruCell cell(4, 5, rng, "gru");
  const Tensor x_src = random_tensor(6, 4, 42);
  const Tensor h_src = random_tensor(7, 5, 43);
  // Duplicate indices on purpose: the backward must accumulate repeats.
  const std::vector<int> x_idx = {0, 3, 3, 5, 1, 0, 2, 4};
  const std::vector<int> h_idx = {6, 0, 2, 2, 5, 1, 4, 3};
  auto run = [&](bool fused) {
    set_fused_gru(fused);
    Tape tape;
    const ValueId out = cell.step_gathered(
        tape, tape.constant(x_src), x_idx, tape.constant(h_src), h_idx);
    return tape.value(out);
  };
  const Tensor composed = run(false);
  EXPECT_EQ(composed.rows(), 8);
  EXPECT_EQ(composed.cols(), 5);
  EXPECT_TRUE(bitwise_equal(composed, run(true)));
}

TEST(FusedGru, GradCheckThroughGatheredFusedStep) {
  FusedGruGuard guard;
  set_fused_gru(true);
  Rng rng(44);
  GruCell cell(2, 3, rng, "gru");
  const Tensor x_src = random_tensor(4, 2, 45);
  const Tensor h_src = random_tensor(4, 3, 46);
  const std::vector<int> x_idx = {1, 1, 3, 0, 2};
  const std::vector<int> h_idx = {2, 0, 0, 3, 1};
  const Tensor target(5, 3, 0.15f);
  expect_gradients_match(cell.params(), [&](Tape& tape) {
    const ValueId out = cell.step_gathered(
        tape, tape.constant(x_src), x_idx, tape.constant(h_src), h_idx);
    return tape.mse(out, target);
  });
}

TEST(FusedGru, GatheredSourceGradientsMatchComposed) {
  FusedGruGuard guard;
  Rng rng(47);
  GruCell cell(3, 4, rng, "gru");
  Parameter x_src("x_src", random_tensor(5, 3, 48));
  Parameter h_src("h_src", random_tensor(5, 4, 49));
  const std::vector<int> x_idx = {4, 0, 0, 2, 3, 1};
  const std::vector<int> h_idx = {1, 1, 3, 0, 4, 2};
  const Tensor target(6, 4, 0.1f);
  auto source_grads = [&](bool fused) {
    set_fused_gru(fused);
    x_src.zero_grad();
    h_src.zero_grad();
    Tape tape;
    const ValueId out = cell.step_gathered(
        tape, tape.param(x_src), x_idx, tape.param(h_src), h_idx);
    tape.backward(tape.mse(out, target));
    return std::pair<Tensor, Tensor>(x_src.grad, h_src.grad);
  };
  const auto composed = source_grads(false);
  const auto fused = source_grads(true);
  for (int i = 0; i < composed.first.size(); ++i) {
    const auto k = static_cast<std::size_t>(i);
    EXPECT_NEAR(fused.first[k], composed.first[k],
                1e-5f * (1.0f + std::abs(composed.first[k])));
  }
  for (int i = 0; i < composed.second.size(); ++i) {
    const auto k = static_cast<std::size_t>(i);
    EXPECT_NEAR(fused.second[k], composed.second[k],
                1e-5f * (1.0f + std::abs(composed.second[k])));
  }
}

TEST(Mlp, CanOverfitTinyRegression) {
  // y = 2*x0 - x1 on 8 points; a small MLP must drive MSE near zero.
  Rng rng(11);
  Mlp mlp({2, 16, 1}, rng, "mlp");
  Tensor x(8, 2);
  Tensor y(8, 1);
  Rng data_rng(12);
  for (int i = 0; i < 8; ++i) {
    x.at(i, 0) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    x.at(i, 1) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    y.at(i, 0) = 2.0f * x.at(i, 0) - x.at(i, 1);
  }
  Adam opt(mlp.params(), 3e-2f);
  double final_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    Tape tape;
    const ValueId loss = tape.mse(mlp.apply(tape, tape.constant(x)), y);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
    final_loss = tape.value(loss).at(0, 0);
  }
  EXPECT_LT(final_loss, 1e-3);
}

}  // namespace
}  // namespace rn::ag
