// Determinism contract of the parallel execution layer: datasets and
// autodiff kernels are bitwise identical at any thread count.
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ag/nn.h"
#include "ag/tensor.h"
#include "dataset/dataset.h"
#include "gradcheck.h"
#include "par/thread_pool.h"
#include "topology/generators.h"
#include "util/rng.h"

namespace rn {
namespace {

dataset::GeneratorConfig fast_config() {
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  return cfg;
}

std::shared_ptr<const topo::Topology> shared_nsfnet() {
  return std::make_shared<const topo::Topology>(topo::nsfnet());
}

std::vector<dataset::Sample> generate_with_threads(int threads, int count) {
  par::set_global_threads(threads);
  dataset::DatasetGenerator gen(fast_config(), 7);
  return gen.generate_many(shared_nsfnet(), count);
}

// The headline contract from the ISSUE: the same dataset at RN_THREADS=1
// and RN_THREADS=4 (here set programmatically) is bitwise equal.
TEST(ParDeterminism, DatasetBitwiseEqualAcrossThreadCounts) {
  const std::vector<dataset::Sample> serial = generate_with_threads(1, 6);
  const std::vector<dataset::Sample> threaded = generate_with_threads(4, 6);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].delay_s, threaded[i].delay_s) << "sample " << i;
    EXPECT_EQ(serial[i].jitter_s, threaded[i].jitter_s) << "sample " << i;
    EXPECT_EQ(serial[i].valid, threaded[i].valid) << "sample " << i;
    EXPECT_EQ(serial[i].max_link_utilization,
              threaded[i].max_link_utilization)
        << "sample " << i;
    for (int idx = 0; idx < serial[i].num_pairs(); ++idx) {
      ASSERT_EQ(serial[i].tm.rate_by_index(idx),
                threaded[i].tm.rate_by_index(idx))
          << "sample " << i << " pair " << idx;
      ASSERT_EQ(serial[i].routing.path_by_index(idx),
                threaded[i].routing.path_by_index(idx))
          << "sample " << i << " pair " << idx;
    }
  }
  par::set_global_threads(1);
}

// generate() interleaved with generate_many() must see the same per-index
// streams as one straight generate_many run.
TEST(ParDeterminism, InterleavedGenerationMatchesBatch) {
  par::set_global_threads(2);
  dataset::DatasetGenerator batch_gen(fast_config(), 21);
  dataset::DatasetGenerator mixed_gen(fast_config(), 21);
  const auto topo_ptr = shared_nsfnet();
  const std::vector<dataset::Sample> batch =
      batch_gen.generate_many(topo_ptr, 4);
  std::vector<dataset::Sample> mixed;
  mixed.push_back(mixed_gen.generate(topo_ptr));
  for (dataset::Sample& s : mixed_gen.generate_many(topo_ptr, 2)) {
    mixed.push_back(std::move(s));
  }
  mixed.push_back(mixed_gen.generate(topo_ptr));
  ASSERT_EQ(batch.size(), mixed.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].delay_s, mixed[i].delay_s) << "sample " << i;
    EXPECT_EQ(batch[i].jitter_s, mixed[i].jitter_s) << "sample " << i;
  }
  par::set_global_threads(1);
}

// generate_at is index-addressed and const: any order, any subset.
TEST(ParDeterminism, GenerateAtIsOrderIndependent) {
  par::set_global_threads(1);
  dataset::DatasetGenerator gen(fast_config(), 33);
  const auto topo_ptr = shared_nsfnet();
  const dataset::Sample late = gen.generate_at(topo_ptr, 3);
  const dataset::Sample early = gen.generate_at(topo_ptr, 0);
  const dataset::Sample late_again = gen.generate_at(topo_ptr, 3);
  EXPECT_EQ(late.delay_s, late_again.delay_s);
  EXPECT_NE(early.delay_s, late.delay_s);
}

// Forces the row-parallel matmul path (threshold 0, 4 threads) and checks
// analytic gradients of an MLP against finite differences — the gradcheck
// runs every backward matmul_tn / matmul_nt through the pool too.
TEST(ParDeterminism, GradcheckThroughThreadedKernels) {
  const long long saved = ag::matmul_parallel_threshold();
  ag::set_matmul_parallel_threshold(0);
  par::set_global_threads(4);

  Rng rng(5);
  ag::Mlp mlp({6, 8, 2}, rng, "gc");
  ag::Tensor x(5, 6);
  for (int i = 0; i < x.size(); ++i) {
    x[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  std::vector<ag::Parameter*> params = mlp.params();
  rn::testing::expect_gradients_match(params, [&](ag::Tape& tape) {
    const ag::ValueId out = mlp.apply(tape, tape.constant(x));
    return tape.mse(out, ag::Tensor(5, 2, 0.3f));
  });

  ag::set_matmul_parallel_threshold(saved);
  par::set_global_threads(1);
}

// Verbatim copies of the pre-blocking serial kernels (PR 1): golden values
// and checkpoint-reproduced metrics recorded before the parallel layer were
// produced by these exact loops.
ag::Tensor reference_matmul(const ag::Tensor& a, const ag::Tensor& b) {
  ag::Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

ag::Tensor reference_matmul_tn(const ag::Tensor& a, const ag::Tensor& b) {
  ag::Tensor c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

ag::Tensor reference_matmul_nt(const ag::Tensor& a, const ag::Tensor& b) {
  ag::Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
  return c;
}

void fill_with_zero_runs(ag::Tensor& t, Rng& rng) {
  for (int i = 0; i < t.size(); ++i) {
    const double u = rng.uniform(0.0, 1.0);
    // A quarter zeros (some negative) so the kernels' av == 0.0f skip path
    // is exercised: skipping vs adding 0 differs for -0.0 accumulators.
    if (u < 0.125) {
      t[static_cast<std::size_t>(i)] = 0.0f;
    } else if (u < 0.25) {
      t[static_cast<std::size_t>(i)] = -0.0f;
    } else {
      t[static_cast<std::size_t>(i)] =
          static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  }
}

// Bit-pattern comparison: operator== would miss a -0.0 vs +0.0 flip and
// can never confirm NaN payloads, both of which the zero-skip contract is
// about.
void expect_bitwise_equal(const ag::Tensor& want, const ag::Tensor& got,
                          const char* tag, int threads) {
  ASSERT_EQ(want.size(), got.size()) << tag;
  for (int i = 0; i < want.size(); ++i) {
    std::uint32_t wb = 0, gb = 0;
    std::memcpy(&wb, want.data() + i, sizeof(wb));
    std::memcpy(&gb, got.data() + i, sizeof(gb));
    ASSERT_EQ(wb, gb) << tag << " index " << i << " threads " << threads
                      << " want " << want[static_cast<std::size_t>(i)]
                      << " got " << got[static_cast<std::size_t>(i)];
  }
}

// The blocked kernels (serial and threaded) must be bitwise equal to the
// pre-blocking loops above — tiling, the tn pair-unroll, and thread
// partitioning may only change *where* each add runs, never its order.
TEST(ParDeterminism, MatmulBitwiseEqualToUnblockedReference) {
  Rng rng(17);
  const int m = 97, k = 33, n = 29;  // deliberately non-multiples of tiles
  ag::Tensor a(m, k), b(k, n), bt(n, k), at(k, m);
  fill_with_zero_runs(a, rng);
  fill_with_zero_runs(b, rng);
  fill_with_zero_runs(bt, rng);
  fill_with_zero_runs(at, rng);

  const ag::Tensor ref = reference_matmul(a, b);
  const ag::Tensor ref_tn = reference_matmul_tn(at, b);
  const ag::Tensor ref_nt = reference_matmul_nt(a, bt);

  const long long saved = ag::matmul_parallel_threshold();
  const long long saved_nt = ag::matmul_nt_tile_threshold();
  for (const int threads : {1, 4}) {
    ag::set_matmul_parallel_threshold(threads == 1 ? saved : 0);
    par::set_global_threads(threads);
    expect_bitwise_equal(ref, ag::matmul(a, b), "nn", threads);
    expect_bitwise_equal(ref_tn, ag::matmul_tn(at, b), "tn", threads);
    // nt has two shapes — the untiled small-B fallback and the j-tiled
    // panel kernel; pin each via the threshold and demand bitwise equality
    // from both.
    ag::set_matmul_nt_tile_threshold(1LL << 62);  // always fallback
    expect_bitwise_equal(ref_nt, ag::matmul_nt(a, bt), "nt-naive", threads);
    ag::set_matmul_nt_tile_threshold(0);  // always tiled
    expect_bitwise_equal(ref_nt, ag::matmul_nt(a, bt), "nt-tiled", threads);
    ag::set_matmul_nt_tile_threshold(saved_nt);
  }
  ag::set_matmul_parallel_threshold(saved);
  par::set_global_threads(1);
}

// The threaded kernels must be bitwise equal to the serial ones, not just
// close: same tiles, same accumulation order, only the row partitioning
// moves between threads.
TEST(ParDeterminism, MatmulBitwiseEqualAcrossThreadCounts) {
  Rng rng(11);
  const int m = 97, k = 33, n = 29;  // deliberately non-multiples of tiles
  ag::Tensor a(m, k), b(k, n), bt(n, k), at(k, m);
  for (int i = 0; i < a.size(); ++i) {
    a[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  for (int i = 0; i < b.size(); ++i) {
    b[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  for (int i = 0; i < bt.size(); ++i) {
    bt[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  for (int i = 0; i < at.size(); ++i) {
    at[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-2.0, 2.0));
  }

  par::set_global_threads(1);
  const ag::Tensor c1 = ag::matmul(a, b);
  const ag::Tensor c1_tn = ag::matmul_tn(at, b);
  const ag::Tensor c1_nt = ag::matmul_nt(a, bt);

  const long long saved = ag::matmul_parallel_threshold();
  ag::set_matmul_parallel_threshold(0);
  par::set_global_threads(4);
  const ag::Tensor c4 = ag::matmul(a, b);
  const ag::Tensor c4_tn = ag::matmul_tn(at, b);
  const ag::Tensor c4_nt = ag::matmul_nt(a, bt);
  ag::set_matmul_parallel_threshold(saved);
  par::set_global_threads(1);

  for (int i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1[static_cast<std::size_t>(i)], c4[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < c1_tn.size(); ++i) {
    ASSERT_EQ(c1_tn[static_cast<std::size_t>(i)],
              c4_tn[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < c1_nt.size(); ++i) {
    ASSERT_EQ(c1_nt[static_cast<std::size_t>(i)],
              c4_nt[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace rn
