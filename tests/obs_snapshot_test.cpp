// Tests for the periodic stats reporter (src/obs/snapshot.h) and the
// bench-regression diff (src/obs/diff.h): the reporter's drain contract
// (at least one obs.snapshot, counter deltas between snapshots, clean
// stop), and the diff's direction heuristics, threshold gating, and
// schema-growth tolerance on constructed JSON pairs.
#include "obs/diff.h"
#include "obs/snapshot.h"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace rn::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "snap_" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Parses a JSONL line and returns fields.<key> as a number (0 if absent).
double field_of(const std::string& line, const std::string& key) {
  JsonValue root;
  std::string err;
  if (!parse_json(line, &root, &err)) return 0.0;
  const JsonValue* fields = root.find("fields");
  if (fields == nullptr) return 0.0;
  const JsonValue* v = fields->find(key.c_str());
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

std::vector<std::string> snapshot_lines(const std::string& path) {
  std::vector<std::string> out;
  for (const std::string& line : read_lines(path)) {
    if (line.find("\"kind\":\"obs.snapshot\"") != std::string::npos) {
      out.push_back(line);
    }
  }
  return out;
}

class StatsReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    Tracer::global().reset_for_tests();
    StatsReporter::global().stop();
  }
  void TearDown() override {
    StatsReporter::global().stop();
    EventSink::global().close();
    Registry::global().reset();
  }
};

TEST_F(StatsReporterTest, StartThenStopEmitsAtLeastOneSnapshot) {
  const std::string path = temp_path("one.jsonl");
  EventSink::global().open(path);
  Registry::global().counter("snap.requests_total").add(3);
  StatsReporter& rep = StatsReporter::global();
  ASSERT_FALSE(rep.running());
  rep.start(/*period_s=*/0.05);
  EXPECT_TRUE(rep.running());
  // Even if we beat the first period, stop() emits a final snapshot.
  rep.stop();
  EXPECT_FALSE(rep.running());
  EventSink::global().close();

  const std::vector<std::string> snaps = snapshot_lines(path);
  ASSERT_GE(snaps.size(), 1u);
  EXPECT_EQ(field_of(snaps.back(), "snap.requests_total"), 3.0);
  EXPECT_GT(field_of(snaps.back(), "period_s"), 0.0);
  // stop() is idempotent and restart works.
  rep.stop();
  rep.start(0.05);
  EXPECT_TRUE(rep.running());
  rep.stop();
}

TEST_F(StatsReporterTest, StartRejectsNonPositivePeriod) {
  EXPECT_THROW(StatsReporter::global().start(0.0), std::runtime_error);
  EXPECT_THROW(StatsReporter::global().start(-1.0), std::runtime_error);
}

TEST_F(StatsReporterTest, EmitOnceReportsCounterDeltasNotTotals) {
  const std::string path = temp_path("deltas.jsonl");
  EventSink::global().open(path);
  Counter& c = Registry::global().counter("snap.events_total");
  StatsReporter& rep = StatsReporter::global();

  c.add(10);
  rep.emit_once();
  c.add(5);
  rep.emit_once();
  rep.emit_once();  // no movement -> delta 0
  EventSink::global().close();

  const std::vector<std::string> snaps = snapshot_lines(path);
  ASSERT_GE(snaps.size(), 3u);
  const std::size_t n = snaps.size();
  EXPECT_EQ(field_of(snaps[n - 3], "snap.events_total"), 10.0);
  EXPECT_EQ(field_of(snaps[n - 2], "snap.events_total"), 5.0);
  EXPECT_EQ(field_of(snaps[n - 1], "snap.events_total"), 0.0);
  // Sequence numbers are monotonic across the run.
  EXPECT_GT(field_of(snaps[n - 1], "seq"), field_of(snaps[n - 3], "seq"));
}

TEST_F(StatsReporterTest, SnapshotCarriesWindowedQuantilesAndTracerLosses) {
  const std::string path = temp_path("window.jsonl");
  EventSink::global().open(path);
  Registry::global().windowed("snap.latency_s").record(0.25);
  Registry::global().histogram("snap.alltime_s").record(0.25);
  StatsReporter::global().emit_once();
  EventSink::global().close();

  const std::vector<std::string> snaps = snapshot_lines(path);
  ASSERT_GE(snaps.size(), 1u);
  const std::string& line = snaps.back();
  EXPECT_EQ(field_of(line, "snap.latency_s.window_count"), 1.0);
  EXPECT_GT(field_of(line, "snap.latency_s.window_p99"), 0.0);
  EXPECT_GT(field_of(line, "snap.latency_s.window_p50"), 0.0);
  EXPECT_GT(field_of(line, "snap.alltime_s.p99"), 0.0);
  EXPECT_NE(line.find("trace.dropped"), std::string::npos) << line;
  EXPECT_NE(line.find("trace.sampled_out"), std::string::npos) << line;
}

TEST_F(StatsReporterTest, BackgroundThreadEmitsPeriodically) {
  const std::string path = temp_path("periodic.jsonl");
  EventSink::global().open(path);
  StatsReporter& rep = StatsReporter::global();
  const std::uint64_t baseline = rep.emitted();  // counts span the process
  rep.start(/*period_s=*/0.02);
  // Wait for the thread itself (not stop's final emit) to produce output.
  for (int i = 0; i < 500 && rep.emitted() < baseline + 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(rep.emitted(), baseline + 2);
  rep.stop();
  EventSink::global().close();
  EXPECT_GE(snapshot_lines(path).size(), 2u);
}

TEST_F(StatsReporterTest, DisabledSinkMakesEmitANoOp) {
  ASSERT_FALSE(EventSink::global().enabled());
  StatsReporter& rep = StatsReporter::global();
  const std::uint64_t before = rep.emitted();
  rep.emit_once();
  EXPECT_EQ(rep.emitted(), before);
}

// ---------------------------------------------------------------------------
// obs diff
// ---------------------------------------------------------------------------

std::string write_json(const std::string& name, const std::string& body) {
  const std::string path = temp_path(name);
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(MetricDirectionTest, ClassifiesByName) {
  // Failure-ish names gate lower-better even when they end in _total.
  EXPECT_EQ(metric_direction("serve.rejected_total"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("trace.dropped"), MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("trace.sampled_out"),
            MetricDirection::kLowerBetter);
  // Plain counts are neutral: more work is not worse.
  EXPECT_EQ(metric_direction("sim.events_total"), MetricDirection::kNeutral);
  EXPECT_EQ(metric_direction("telemetry.histograms.x.count"),
            MetricDirection::kNeutral);
  EXPECT_EQ(metric_direction("telemetry.windows.x.window_s"),
            MetricDirection::kNeutral);
  // Throughput-like is higher-better.
  EXPECT_EQ(metric_direction("serve.throughput_rps"),
            MetricDirection::kHigherBetter);
  EXPECT_EQ(metric_direction("trainer.samples_per_s"),
            MetricDirection::kHigherBetter);
  // Latency / loss / error / seconds-suffixed are lower-better.
  EXPECT_EQ(metric_direction("serve.latency_s.p99"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("bench.wall_s"), MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("eval.nsfnet.delay_mre"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("bench.train.final_loss"),
            MetricDirection::kLowerBetter);
  // Unclassified stays neutral.
  EXPECT_EQ(metric_direction("bench.scale_name"), MetricDirection::kNeutral);
}

TEST(ObsDiffTest, IdenticalFilesPassWithNoRegressions) {
  const std::string body =
      "{\"telemetry\":{\"gauges\":{\"bench.wall_s\":10.0,"
      "\"serve.throughput_rps\":100.0}}}";
  const std::string a = write_json("diff_id_a.json", body);
  const std::string b = write_json("diff_id_b.json", body);
  const DiffReport rep = diff_bench_files(a, b);
  EXPECT_EQ(rep.regressions, 0u);
  EXPECT_EQ(rep.improvements, 0u);
  EXPECT_EQ(rep.compared, 2u);
  EXPECT_TRUE(rep.lines.empty());
}

TEST(ObsDiffTest, DirectionAwareRegressionsAndImprovements) {
  const std::string a = write_json(
      "diff_dir_a.json",
      "{\"latency_s\":1.0,\"throughput_rps\":100.0,\"events_total\":50}");
  const std::string b = write_json(
      "diff_dir_b.json",
      "{\"latency_s\":2.0,\"throughput_rps\":200.0,\"events_total\":500}");
  const DiffReport rep = diff_bench_files(a, b);
  // latency doubled: regression. throughput doubled: improvement. events
  // (neutral) changed: reported but gates nothing.
  EXPECT_EQ(rep.regressions, 1u);
  EXPECT_EQ(rep.improvements, 1u);
  ASSERT_GE(rep.lines.size(), 3u);
  EXPECT_EQ(rep.lines.front().key, "latency_s");  // regressions sort first
  EXPECT_TRUE(rep.lines.front().regression);
  EXPECT_NEAR(rep.lines.front().change_pct, 100.0, 1e-9);

  // Reversed order flips the verdict.
  const DiffReport rev = diff_bench_files(b, a);
  EXPECT_EQ(rev.regressions, 1u);  // throughput halved
  EXPECT_EQ(rev.improvements, 1u);  // latency halved
}

TEST(ObsDiffTest, ThresholdGatesSmallChanges) {
  const std::string a = write_json("diff_thr_a.json", "{\"latency_s\":1.0}");
  const std::string b = write_json("diff_thr_b.json", "{\"latency_s\":1.08}");
  DiffOptions opts;
  opts.threshold_pct = 10.0;
  EXPECT_EQ(diff_bench_files(a, b, opts).regressions, 0u);
  opts.threshold_pct = 5.0;
  EXPECT_EQ(diff_bench_files(a, b, opts).regressions, 1u);
}

TEST(ObsDiffTest, SchemaGrowthIsReportedButDoesNotGate) {
  const std::string a =
      write_json("diff_grow_a.json", "{\"latency_s\":1.0,\"old_key\":5.0}");
  const std::string b =
      write_json("diff_grow_b.json", "{\"latency_s\":1.0,\"new_key\":7.0}");
  const DiffReport rep = diff_bench_files(a, b);
  EXPECT_EQ(rep.regressions, 0u);
  EXPECT_EQ(rep.compared, 1u);
  ASSERT_EQ(rep.only_in_a.size(), 1u);
  EXPECT_EQ(rep.only_in_a[0], "old_key");
  ASSERT_EQ(rep.only_in_b.size(), 1u);
  EXPECT_EQ(rep.only_in_b[0], "new_key");
}

TEST(ObsDiffTest, TraceByNameSubtreeIsIgnored) {
  const std::string a = write_json(
      "diff_noise_a.json",
      "{\"trace\":{\"spans\":10,\"by_name\":{\"step\":{\"total_s\":1.0}}}}");
  const std::string b = write_json(
      "diff_noise_b.json",
      "{\"trace\":{\"spans\":10,\"by_name\":{\"step\":{\"total_s\":9.0}}}}");
  const DiffReport rep = diff_bench_files(a, b);
  EXPECT_EQ(rep.regressions, 0u);
  EXPECT_TRUE(rep.lines.empty());
  EXPECT_EQ(rep.compared, 1u);  // only trace.spans
}

TEST(ObsDiffTest, FormatSummarizesRegressions) {
  const std::string a = write_json("diff_fmt_a.json", "{\"latency_s\":1.0}");
  const std::string b = write_json("diff_fmt_b.json", "{\"latency_s\":3.0}");
  const DiffReport rep = diff_bench_files(a, b);
  const std::string text = rep.format(a, b, 10.0);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_s"), std::string::npos) << text;
  EXPECT_NE(text.find("1 regression"), std::string::npos) << text;
}

TEST(ObsDiffTest, ThrowsOnMissingOrMalformedInput) {
  const std::string good = write_json("diff_ok.json", "{\"x\":1.0}");
  EXPECT_THROW(diff_bench_files(temp_path("diff_nope.json"), good),
               std::runtime_error);
  const std::string bad = write_json("diff_bad.json", "this is not json");
  EXPECT_THROW(diff_bench_files(good, bad), std::runtime_error);
}

}  // namespace
}  // namespace rn::obs
