#include "core/routenet.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ag/arena.h"
#include "ag/nn.h"
#include "gradcheck.h"
#include "topology/generators.h"

namespace rn::core {
namespace {

dataset::Sample make_sample(std::shared_ptr<const topo::Topology> topology,
                            std::uint64_t seed) {
  Rng rng(seed);
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm = traffic::uniform_traffic(
      topology->num_nodes(), 50.0, 150.0, rng);
  dataset::Sample s{topology, std::move(scheme), std::move(tm),
                    {},       {},                {},
                    0.5};
  const int pairs = topology->num_pairs();
  s.delay_s.resize(static_cast<std::size_t>(pairs));
  s.jitter_s.resize(static_cast<std::size_t>(pairs));
  s.valid.assign(static_cast<std::size_t>(pairs), 1);
  for (int idx = 0; idx < pairs; ++idx) {
    // Synthetic but structured targets: delay grows with hop count.
    const double hops =
        static_cast<double>(s.routing.path_by_index(idx).size());
    s.delay_s[static_cast<std::size_t>(idx)] = 0.01 * hops;
    s.jitter_s[static_cast<std::size_t>(idx)] = 0.002 * hops;
  }
  return s;
}

RouteNetConfig tiny_config() {
  RouteNetConfig cfg;
  cfg.link_state_dim = 6;
  cfg.path_state_dim = 6;
  cfg.iterations = 2;
  cfg.readout_hidden = 8;
  return cfg;
}

TEST(RouteNet, ForwardShapes) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  const dataset::Sample s = make_sample(topology, 1);
  RouteNet model(tiny_config());
  const GraphBatch batch =
      GraphBatch::from_sample(s, model.normalizer(), false);
  ag::Tape tape;
  const RouteNet::Output out = model.forward(tape, batch);
  EXPECT_EQ(tape.value(out.delay).rows(), batch.num_paths);
  EXPECT_EQ(tape.value(out.delay).cols(), 1);
  EXPECT_EQ(tape.value(out.jitter).rows(), batch.num_paths);
}

TEST(RouteNet, DeterministicForward) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  const dataset::Sample s = make_sample(topology, 2);
  RouteNet m1(tiny_config());
  RouteNet m2(tiny_config());
  const RouteNet::Prediction p1 = m1.predict(s);
  const RouteNet::Prediction p2 = m2.predict(s);
  ASSERT_EQ(p1.delay_s.size(), p2.delay_s.size());
  for (std::size_t i = 0; i < p1.delay_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.delay_s[i], p2.delay_s[i]);
  }
}

TEST(RouteNet, PredictionsArePositive) {
  // Log-space readout guarantees positive delay/jitter estimates.
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  const dataset::Sample s = make_sample(topology, 3);
  RouteNet model(tiny_config());
  const RouteNet::Prediction pred = model.predict(s);
  for (double d : pred.delay_s) EXPECT_GT(d, 0.0);
  for (double j : pred.jitter_s) EXPECT_GT(j, 0.0);
}

TEST(RouteNet, TrafficAffectsPrediction) {
  // The GNN must actually read the traffic matrix: doubling one flow's
  // traffic must change some prediction.
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  dataset::Sample s = make_sample(topology, 4);
  RouteNet model(tiny_config());
  // Realistic input scaling — with the identity normalizer the raw traffic
  // values (~100) saturate the GRU gates and mask the sensitivity.
  dataset::Normalizer norm;
  norm.capacity_scale = 1.0 / 10'000.0;
  norm.traffic_scale = 1.0 / 100.0;
  model.set_normalizer(norm);
  const RouteNet::Prediction before = model.predict(s);
  const auto [src, dst] = topo::pair_from_index(0, 5);
  s.tm.set_rate_bps(src, dst, s.tm.rate_bps(src, dst) * 100.0);
  const RouteNet::Prediction after = model.predict(s);
  double max_change = 0.0;
  for (std::size_t i = 0; i < before.delay_s.size(); ++i) {
    max_change = std::max(max_change,
                          std::abs(after.delay_s[i] - before.delay_s[i]));
  }
  EXPECT_GT(max_change, 0.0);
}

TEST(RouteNet, TopologyCapacityAffectsPrediction) {
  auto slow = std::make_shared<const topo::Topology>(topo::ring(5, 1'000.0));
  auto fast = std::make_shared<const topo::Topology>(topo::ring(5, 40'000.0));
  RouteNet model(tiny_config());
  dataset::Normalizer norm;
  norm.capacity_scale = 1.0 / 40'000.0;
  norm.traffic_scale = 1.0 / 100.0;
  model.set_normalizer(norm);
  const dataset::Sample s_slow = make_sample(slow, 5);
  dataset::Sample s_fast = make_sample(fast, 5);
  // Same routing & traffic (same seed), different capacities.
  const RouteNet::Prediction a = model.predict(s_slow);
  const RouteNet::Prediction b = model.predict(s_fast);
  double max_change = 0.0;
  for (std::size_t i = 0; i < a.delay_s.size(); ++i) {
    max_change =
        std::max(max_change, std::abs(a.delay_s[i] - b.delay_s[i]));
  }
  EXPECT_GT(max_change, 0.0);
}

TEST(RouteNet, GeneralizesAcrossTopologySizesStructurally) {
  // The same trained weights must run on graphs of any size — the core
  // architectural property. Just exercise forward on 5-, 14- and 24-node
  // graphs with one model instance.
  RouteNet model(tiny_config());
  for (auto topology :
       {std::make_shared<const topo::Topology>(topo::ring(5)),
        std::make_shared<const topo::Topology>(topo::nsfnet()),
        std::make_shared<const topo::Topology>(topo::geant2())}) {
    const dataset::Sample s = make_sample(topology, 6);
    const RouteNet::Prediction pred = model.predict(s);
    EXPECT_EQ(static_cast<int>(pred.delay_s.size()), topology->num_pairs());
  }
}

TEST(RouteNet, GradCheckThroughMessagePassing) {
  // Full end-to-end finite-difference check on a tiny graph; this covers the
  // composition gather → GRU → scatter → segment_sum → GRU → readout.
  auto topology = std::make_shared<const topo::Topology>(topo::line(3));
  const dataset::Sample s = make_sample(topology, 7);
  RouteNetConfig cfg;
  cfg.link_state_dim = 3;
  cfg.path_state_dim = 3;
  cfg.iterations = 2;
  cfg.readout_hidden = 4;
  RouteNet model(cfg);
  const GraphBatch batch =
      GraphBatch::from_sample(s, model.normalizer(), true);
  rn::testing::expect_gradients_match(
      model.params(),
      [&](ag::Tape& tape) {
        const RouteNet::Output out = model.forward(tape, batch);
        const ag::ValueId sel = tape.gather_rows(out.delay, batch.valid_paths);
        return tape.mse(sel, batch.delay_targets);
      },
      /*eps=*/1e-2f, /*rel_tol=*/8e-2f, /*abs_tol=*/2e-4f);
}

TEST(RouteNet, BatchedForwardMatchesPerSampleForward) {
  // Merging samples into one GraphBatch must not change any prediction:
  // the graphs are disjoint, so batching is purely an indexing transform.
  auto ring5 = std::make_shared<const topo::Topology>(topo::ring(5));
  auto nsf = std::make_shared<const topo::Topology>(topo::nsfnet());
  const dataset::Sample s1 = make_sample(ring5, 21);
  const dataset::Sample s2 = make_sample(nsf, 22);
  RouteNet model(tiny_config());
  dataset::Normalizer norm;
  norm.capacity_scale = 1.0 / 10'000.0;
  norm.traffic_scale = 1.0 / 100.0;
  model.set_normalizer(norm);

  const GraphBatch merged =
      GraphBatch::from_samples({&s1, &s2}, norm, false);
  ag::Tape tape;
  const RouteNet::Output out = model.forward(tape, merged);
  const ag::Tensor& merged_delay = tape.value(out.delay);

  const RouteNet::Prediction p1 = model.predict(s1);
  const RouteNet::Prediction p2 = model.predict(s2);
  for (int i = 0; i < s1.num_pairs(); ++i) {
    EXPECT_NEAR(norm.denormalize_delay(merged_delay.at(i, 0)),
                p1.delay_s[static_cast<std::size_t>(i)],
                1e-6 * p1.delay_s[static_cast<std::size_t>(i)] + 1e-12)
        << "sample 1 path " << i;
  }
  const int off = s1.num_pairs();
  for (int i = 0; i < s2.num_pairs(); ++i) {
    EXPECT_NEAR(norm.denormalize_delay(merged_delay.at(off + i, 0)),
                p2.delay_s[static_cast<std::size_t>(i)],
                1e-6 * p2.delay_s[static_cast<std::size_t>(i)] + 1e-12)
        << "sample 2 path " << i;
  }
}

TEST(RouteNet, PredictBatchMatchesPredict) {
  auto ring5 = std::make_shared<const topo::Topology>(topo::ring(5));
  auto nsf = std::make_shared<const topo::Topology>(topo::nsfnet());
  std::vector<dataset::Sample> samples;
  samples.push_back(make_sample(ring5, 31));
  samples.push_back(make_sample(nsf, 32));
  samples.push_back(make_sample(ring5, 33));
  RouteNet model(tiny_config());
  dataset::Normalizer norm;
  norm.capacity_scale = 1.0 / 10'000.0;
  norm.traffic_scale = 1.0 / 100.0;
  model.set_normalizer(norm);
  // Batch size 2 forces a split across forward passes.
  const std::vector<RouteNet::Prediction> batched =
      model.predict_batch(samples, 2);
  ASSERT_EQ(batched.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const RouteNet::Prediction single = model.predict(samples[i]);
    ASSERT_EQ(batched[i].delay_s.size(), single.delay_s.size());
    for (std::size_t p = 0; p < single.delay_s.size(); ++p) {
      EXPECT_NEAR(batched[i].delay_s[p], single.delay_s[p],
                  1e-9 * single.delay_s[p]);
      EXPECT_NEAR(batched[i].jitter_s[p], single.jitter_s[p],
                  1e-9 * single.jitter_s[p]);
    }
  }
}

TEST(RouteNet, SaveLoadRoundTrip) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  const dataset::Sample s = make_sample(topology, 8);
  RouteNet model(tiny_config());
  dataset::Normalizer norm;
  norm.log_delay_mean = -3.5;
  norm.log_delay_std = 0.8;
  model.set_normalizer(norm);
  const std::string path = ::testing::TempDir() + "routenet.model";
  model.save(path);
  const RouteNet loaded = RouteNet::load(path);
  EXPECT_EQ(loaded.config().link_state_dim, model.config().link_state_dim);
  EXPECT_DOUBLE_EQ(loaded.normalizer().log_delay_mean, -3.5);
  const RouteNet::Prediction a = model.predict(s);
  const RouteNet::Prediction b = loaded.predict(s);
  for (std::size_t i = 0; i < a.delay_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_s[i], b.delay_s[i]);
  }
}

TEST(RouteNet, MeanAggregationChangesOutput) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  const dataset::Sample s = make_sample(topology, 9);
  RouteNetConfig sum_cfg = tiny_config();
  RouteNetConfig mean_cfg = tiny_config();
  mean_cfg.aggregation = Aggregation::kMean;
  RouteNet sum_model(sum_cfg);
  RouteNet mean_model(mean_cfg);  // identical weights (same seed)
  dataset::Normalizer norm;
  norm.capacity_scale = 1.0 / 10'000.0;
  norm.traffic_scale = 1.0 / 100.0;
  sum_model.set_normalizer(norm);
  mean_model.set_normalizer(norm);
  const RouteNet::Prediction a = sum_model.predict(s);
  const RouteNet::Prediction b = mean_model.predict(s);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.delay_s.size(); ++i) {
    diff = std::max(diff, std::abs(a.delay_s[i] - b.delay_s[i]));
  }
  EXPECT_GT(diff, 0.0);
}

TEST(RouteNet, MeanAggregationGradCheck) {
  auto topology = std::make_shared<const topo::Topology>(topo::line(3));
  const dataset::Sample s = make_sample(topology, 10);
  RouteNetConfig cfg;
  cfg.link_state_dim = 3;
  cfg.path_state_dim = 3;
  cfg.iterations = 2;
  cfg.readout_hidden = 4;
  cfg.aggregation = Aggregation::kMean;
  RouteNet model(cfg);
  const GraphBatch batch =
      GraphBatch::from_sample(s, model.normalizer(), true);
  rn::testing::expect_gradients_match(
      model.params(),
      [&](ag::Tape& tape) {
        const RouteNet::Output out = model.forward(tape, batch);
        const ag::ValueId sel = tape.gather_rows(out.delay, batch.valid_paths);
        return tape.mse(sel, batch.delay_targets);
      },
      /*eps=*/1e-2f, /*rel_tol=*/8e-2f, /*abs_tol=*/2e-4f);
}

TEST(RouteNet, SaveLoadPreservesAblationConfig) {
  RouteNetConfig cfg = tiny_config();
  cfg.aggregation = Aggregation::kMean;
  RouteNet model(cfg);
  dataset::Normalizer norm;
  norm.log_space = false;
  norm.log_delay_mean = 0.25;
  model.set_normalizer(norm);
  const std::string path = ::testing::TempDir() + "routenet_v2.model";
  model.save(path);
  const RouteNet loaded = RouteNet::load(path);
  EXPECT_EQ(loaded.config().aggregation, Aggregation::kMean);
  EXPECT_FALSE(loaded.normalizer().log_space);
  EXPECT_DOUBLE_EQ(loaded.normalizer().log_delay_mean, 0.25);
}

TEST(RouteNet, ParameterCountMatchesArchitecture) {
  RouteNetConfig cfg = tiny_config();
  RouteNet model(cfg);
  // 2 GRUs: 3×(in×h + h×h + h) each; 2 MLPs: (p×r + r) + (r×1 + 1).
  const std::size_t gru_path =
      3 * (6 * 6 + 6 * 6 + 6);
  const std::size_t gru_link = gru_path;
  const std::size_t mlp = (6 * 8 + 8) + (8 * 1 + 1);
  EXPECT_EQ(model.num_parameters(), gru_path + gru_link + 2 * mlp);
}

TEST(RouteNet, RejectsBadConfig) {
  RouteNetConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(RouteNet{cfg}, std::runtime_error);
}

TEST(RouteNet, FusedGruPredictionBitwiseMatchesComposed) {
  // The fused gru_step must not change model outputs at all — bitwise, not
  // just numerically — for both aggregation modes.
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  const dataset::Sample s = make_sample(topology, 51);
  for (const Aggregation agg : {Aggregation::kSum, Aggregation::kMean}) {
    RouteNetConfig cfg = tiny_config();
    cfg.aggregation = agg;
    RouteNet model(cfg);
    const bool saved = ag::fused_gru_enabled();
    ag::set_fused_gru(true);
    const RouteNet::Prediction fused = model.predict(s);
    ag::set_fused_gru(false);
    const RouteNet::Prediction composed = model.predict(s);
    ag::set_fused_gru(saved);
    ASSERT_EQ(fused.delay_s.size(), composed.delay_s.size());
    for (std::size_t i = 0; i < fused.delay_s.size(); ++i) {
      EXPECT_EQ(fused.delay_s[i], composed.delay_s[i]) << "path " << i;
      EXPECT_EQ(fused.jitter_s[i], composed.jitter_s[i]) << "path " << i;
    }
  }
}

TEST(RouteNet, PredictMergedSteadyStateZeroTensorAllocs) {
  // The serving hot path: after warm-up, a predict_merged loop over the
  // same workload must perform ZERO fresh tensor allocations — every
  // buffer comes from the arena free lists.
  if (!ag::arena_enabled()) GTEST_SKIP() << "arena disabled via RN_ARENA=0";
  auto ring5 = std::make_shared<const topo::Topology>(topo::ring(5));
  auto nsf = std::make_shared<const topo::Topology>(topo::nsfnet());
  std::vector<dataset::Sample> samples;
  samples.push_back(make_sample(ring5, 61));
  samples.push_back(make_sample(nsf, 62));
  std::vector<const dataset::Sample*> ptrs;
  for (const dataset::Sample& s : samples) ptrs.push_back(&s);
  RouteNet model(tiny_config());
  for (int i = 0; i < 3; ++i) model.predict_merged(ptrs);  // warm up

  const std::uint64_t fresh_before = ag::tensor_fresh_allocs();
  std::vector<RouteNet::Prediction> last;
  for (int i = 0; i < 20; ++i) last = model.predict_merged(ptrs);
  EXPECT_EQ(ag::tensor_fresh_allocs(), fresh_before)
      << "warm predict_merged loop allocated fresh tensor storage";
  ASSERT_EQ(last.size(), samples.size());
  for (const RouteNet::Prediction& p : last) {
    for (double d : p.delay_s) EXPECT_GT(d, 0.0);
  }
}

}  // namespace
}  // namespace rn::core
