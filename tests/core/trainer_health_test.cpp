// Training-health watchdog tests: a NaN injected into a gradient must
// abort fit() with the offending tensor named, emit a `trainer.health`
// JSONL event, and leave an emergency RNCKPT2 checkpoint that a fresh
// trainer can resume from.
#include "core/trainer.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/event.h"
#include "topology/generators.h"

namespace rn::core {
namespace {

std::vector<dataset::Sample> tiny_dataset(int count, std::uint64_t seed) {
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  dataset::DatasetGenerator gen(cfg, seed);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(6));
  return gen.generate_many(topology, count);
}

RouteNetConfig small_model() {
  RouteNetConfig cfg;
  cfg.link_state_dim = 8;
  cfg.path_state_dim = 8;
  cfg.iterations = 3;
  cfg.readout_hidden = 12;
  return cfg;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "trainer_health_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(TrainerHealth, NanInjectionAbortsNamingTheOffendingTensor) {
  const std::vector<dataset::Sample> train = tiny_dataset(8, 21);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 4;
  cfg.inject_nan_at_batch = 2;
  Trainer trainer(model, cfg);
  try {
    trainer.fit(train);
    FAIL() << "watchdog did not fire";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("training-health watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offending tensor"), std::string::npos) << msg;
    // The injected NaN sits in a gradient, so the named tensor is `.grad`.
    EXPECT_NE(msg.find(".grad"), std::string::npos) << msg;
  }
}

TEST(TrainerHealth, DisabledChecksLetTheRunContinue) {
  const std::vector<dataset::Sample> train = tiny_dataset(8, 22);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 4;
  cfg.inject_nan_at_batch = 2;
  cfg.health_checks = false;
  Trainer trainer(model, cfg);
  const TrainReport report = trainer.fit(train);  // must not throw
  EXPECT_EQ(report.epochs.size(), 2u);
}

TEST(TrainerHealth, WatchdogEmitsHealthEventAndResumableCheckpoint) {
  const std::string jsonl = temp_path("events.jsonl");
  const std::string state = temp_path("state.ckpt");
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("trainer_health_state.ckpt", 0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }

  const std::vector<dataset::Sample> train = tiny_dataset(8, 23);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 4;
  cfg.inject_nan_at_batch = 2;
  cfg.state_path = state;
  obs::EventSink::global().open(jsonl);
  Trainer trainer(model, cfg);
  EXPECT_THROW(trainer.fit(train), std::runtime_error);
  obs::EventSink::global().close();

  // The health event survives the throw (the sink flushes per emit).
  const std::string log = slurp(jsonl);
  EXPECT_NE(log.find("\"kind\":\"trainer.health\""), std::string::npos);
  EXPECT_NE(log.find("\"status\":\"nan_detected\""), std::string::npos);
  EXPECT_NE(log.find("\"tensor\":"), std::string::npos);
  EXPECT_NE(log.find("grad_norm."), std::string::npos);
  EXPECT_NE(log.find("param_norm."), std::string::npos);

  // Emergency checkpoint landed in the normal rotation...
  EXPECT_TRUE(std::filesystem::exists(state + ".000001"));

  // ...and is a valid resume point: a fresh trainer without the injection
  // retries the poisoned batch and completes the full run.
  RouteNet resumed_model(small_model());
  TrainConfig rcfg = cfg;
  rcfg.inject_nan_at_batch = 0;
  rcfg.resume_from = state;
  Trainer resumed(resumed_model, rcfg);
  const TrainReport report = resumed.fit(train);
  EXPECT_FALSE(report.interrupted);
  EXPECT_GE(report.resumed_epoch, 0);
  EXPECT_FALSE(report.epochs.empty());
}

TEST(TrainerHealth, DriftDetectorFlagsAnInjectedGradientBlowup) {
  const std::string jsonl = temp_path("drift_events.jsonl");
  const std::vector<dataset::Sample> train = tiny_dataset(8, 24);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 4;
  cfg.learning_rate = 1e-4f;  // keep norms stable so the baseline holds
  cfg.health_drift_factor = 20.0;
  // Epoch 0 establishes the per-module baselines; from epoch 1 on every
  // gradient is scaled 400x after clipping, a clean divergence signal.
  cfg.inject_grad_scale_at_epoch = 1;
  cfg.inject_grad_scale = 400.0f;
  obs::EventSink::global().open(jsonl);
  Trainer trainer(model, cfg);
  trainer.fit(train);  // drift warns, it does not abort
  obs::EventSink::global().close();

  const std::string log = slurp(jsonl);
  EXPECT_NE(log.find("\"kind\":\"trainer.health.drift\""), std::string::npos)
      << log;
  EXPECT_NE(log.find("\"ratio\":"), std::string::npos);
  EXPECT_NE(log.find("\"baseline_ratio\":"), std::string::npos);
  EXPECT_NE(log.find("\"module\":"), std::string::npos);
}

TEST(TrainerHealth, NoDriftEventOnAHealthyRun) {
  const std::string jsonl = temp_path("nodrift_events.jsonl");
  const std::vector<dataset::Sample> train = tiny_dataset(8, 25);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 4;
  cfg.learning_rate = 1e-4f;
  cfg.health_drift_factor = 20.0;
  obs::EventSink::global().open(jsonl);
  Trainer trainer(model, cfg);
  trainer.fit(train);
  obs::EventSink::global().close();

  const std::string log = slurp(jsonl);
  EXPECT_EQ(log.find("trainer.health.drift"), std::string::npos);
  // The per-epoch health events still flowed.
  EXPECT_NE(log.find("\"kind\":\"trainer.health\""), std::string::npos);
}

TEST(TrainerHealth, DriftConfigIsValidated) {
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.health_drift_factor = -1.0;
  EXPECT_THROW(Trainer(model, cfg), std::runtime_error);
  TrainConfig cfg2;
  cfg2.inject_grad_scale = 0.0f;
  EXPECT_THROW(Trainer(model, cfg2), std::runtime_error);
}

}  // namespace
}  // namespace rn::core
