#include "core/graph_batch.h"

#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "topology/generators.h"

namespace rn::core {
namespace {

dataset::Sample tiny_sample(double delay = 0.01) {
  auto topology = std::make_shared<const topo::Topology>(topo::line(3));
  routing::RoutingScheme scheme = routing::shortest_path_routing(*topology);
  traffic::TrafficMatrix tm(3);
  for (int idx = 0; idx < topology->num_pairs(); ++idx) {
    const auto [s, d] = topo::pair_from_index(idx, 3);
    tm.set_rate_bps(s, d, 100.0 + idx);
  }
  dataset::Sample sample{topology, std::move(scheme), std::move(tm),
                         {},       {},                {},
                         0.5};
  const int pairs = topology->num_pairs();
  sample.delay_s.assign(static_cast<std::size_t>(pairs), delay);
  sample.jitter_s.assign(static_cast<std::size_t>(pairs), delay / 2);
  sample.valid.assign(static_cast<std::size_t>(pairs), 1);
  return sample;
}

TEST(GraphBatch, SingleSampleShapes) {
  const dataset::Sample s = tiny_sample();
  const dataset::Normalizer norm;
  const GraphBatch b = GraphBatch::from_sample(s, norm, true);
  EXPECT_EQ(b.num_links, 4);   // line(3): 2 duplex
  EXPECT_EQ(b.num_paths, 6);
  EXPECT_EQ(b.max_path_length(), 2);  // 0→2 goes through 1
  EXPECT_EQ(b.link_features.rows(), 4);
  EXPECT_EQ(b.path_features.rows(), 6);
  EXPECT_EQ(static_cast<int>(b.valid_paths.size()), 6);
  EXPECT_EQ(b.delay_targets.rows(), 6);
}

TEST(GraphBatch, PositionScheduleCoversEveryHop) {
  const dataset::Sample s = tiny_sample();
  const dataset::Normalizer norm;
  const GraphBatch b = GraphBatch::from_sample(s, norm, true);
  std::size_t hops = 0;
  for (const auto& bucket : b.pos_paths) hops += bucket.size();
  std::size_t expected = 0;
  for (int idx = 0; idx < s.num_pairs(); ++idx) {
    expected += s.routing.path_by_index(idx).size();
  }
  EXPECT_EQ(hops, expected);
}

TEST(GraphBatch, PathsUniqueWithinPosition) {
  const dataset::Sample s = tiny_sample();
  const dataset::Normalizer norm;
  const GraphBatch b = GraphBatch::from_sample(s, norm, true);
  for (const auto& bucket : b.pos_paths) {
    std::set<int> unique(bucket.begin(), bucket.end());
    EXPECT_EQ(unique.size(), bucket.size());
  }
}

TEST(GraphBatch, MergeOffsetsAreDisjoint) {
  const dataset::Sample s1 = tiny_sample();
  const dataset::Sample s2 = tiny_sample();
  const dataset::Normalizer norm;
  const GraphBatch b = GraphBatch::from_samples({&s1, &s2}, norm, true);
  EXPECT_EQ(b.num_links, 8);
  EXPECT_EQ(b.num_paths, 12);
  ASSERT_EQ(b.link_offset.size(), 2u);
  EXPECT_EQ(b.link_offset[1], 4);
  EXPECT_EQ(b.path_offset[1], 6);
  // Second sample's hops must reference links/paths >= the offsets.
  for (std::size_t pos = 0; pos < b.pos_paths.size(); ++pos) {
    for (std::size_t i = 0; i < b.pos_paths[pos].size(); ++i) {
      const int p = b.pos_paths[pos][i];
      const int l = b.pos_links[pos][i];
      EXPECT_EQ(p >= 6, l >= 4) << "path/link from different samples";
    }
  }
}

TEST(GraphBatch, InvalidPathsExcludedFromTargetsOnly) {
  dataset::Sample s = tiny_sample();
  s.valid[0] = 0;
  s.valid[3] = 0;
  const dataset::Normalizer norm;
  const GraphBatch b = GraphBatch::from_sample(s, norm, true);
  EXPECT_EQ(b.num_paths, 6);  // still in the graph
  EXPECT_EQ(static_cast<int>(b.valid_paths.size()), 4);
  EXPECT_EQ(b.delay_targets.rows(), 4);
}

TEST(GraphBatch, WithoutTargetsLeavesTensorsEmpty) {
  const dataset::Sample s = tiny_sample();
  const dataset::Normalizer norm;
  const GraphBatch b = GraphBatch::from_sample(s, norm, false);
  EXPECT_TRUE(b.valid_paths.empty());
  EXPECT_EQ(b.delay_targets.size(), 0);
}

TEST(GraphBatch, FeaturesUseNormalizerScales) {
  const dataset::Sample s = tiny_sample();
  dataset::Normalizer norm;
  norm.capacity_scale = 1e-4;
  norm.traffic_scale = 1e-2;
  const GraphBatch b = GraphBatch::from_sample(s, norm, false);
  EXPECT_NEAR(b.link_features.at(0, 0),
              s.topology->link(0).capacity_bps * 1e-4, 1e-6);
  EXPECT_NEAR(b.path_features.at(0, 0), s.tm.rate_by_index(0) * 1e-2, 1e-5);
}

TEST(GraphBatch, TargetsAreNormalizedLogDelays) {
  dataset::Sample s = tiny_sample(0.02);
  dataset::Normalizer norm;
  norm.log_delay_mean = -4.0;
  norm.log_delay_std = 0.5;
  const GraphBatch b = GraphBatch::from_sample(s, norm, true);
  EXPECT_NEAR(b.delay_targets.at(0, 0),
              (std::log(0.02) + 4.0) / 0.5, 1e-5);
}

TEST(GraphBatch, TargetsAlignWithValidPathOrder) {
  // Craft distinct delays and knock out some paths; target rows must line
  // up with valid_paths order, not with raw pair order.
  dataset::Sample s = tiny_sample();
  for (int idx = 0; idx < s.num_pairs(); ++idx) {
    s.delay_s[static_cast<std::size_t>(idx)] = 0.01 * (idx + 1);
  }
  s.valid[1] = 0;
  s.valid[4] = 0;
  dataset::Normalizer norm;  // identity transform parameters
  norm.log_delay_mean = 0.0;
  norm.log_delay_std = 1.0;
  const GraphBatch b = GraphBatch::from_sample(s, norm, true);
  ASSERT_EQ(b.valid_paths.size(), 4u);
  for (std::size_t i = 0; i < b.valid_paths.size(); ++i) {
    const int pair = b.valid_paths[i];
    EXPECT_NEAR(b.delay_targets.at(static_cast<int>(i), 0),
                norm.normalize_delay(0.01 * (pair + 1)), 1e-5);
  }
}

TEST(GraphBatch, EmptyBatchThrows) {
  const dataset::Normalizer norm;
  EXPECT_THROW(GraphBatch::from_samples({}, norm, true), std::runtime_error);
}

}  // namespace
}  // namespace rn::core
