// Kill-and-resume proof: a training run killed at an arbitrary batch and
// resumed from its last checkpoint must produce final parameters AND Adam
// moments bitwise identical to the uninterrupted run — at any thread count
// (the kernels are bitwise thread-count-invariant since the parallel
// execution layer landed).
#include "core/trainer.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ag/serialize.h"
#include "dataset/shard.h"
#include "dataset/stream.h"
#include "topology/generators.h"

namespace rn::core {
namespace {

std::vector<dataset::Sample> tiny_dataset(int count, std::uint64_t seed) {
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  dataset::DatasetGenerator gen(cfg, seed);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(6));
  return gen.generate_many(topology, count);
}

RouteNetConfig small_model() {
  RouteNetConfig cfg;
  cfg.link_state_dim = 8;
  cfg.path_state_dim = 8;
  cfg.iterations = 3;
  cfg.readout_hidden = 12;
  cfg.dropout = 0.2f;  // exercises the dropout RNG stream across resume
  return cfg;
}

TrainConfig base_config(int threads, const std::string& state_path) {
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 2;
  cfg.learning_rate = 5e-3f;
  cfg.threads = threads;
  cfg.state_path = state_path;
  return cfg;
}

std::string temp_base(const std::string& name) {
  return ::testing::TempDir() + name;
}

void remove_base(const std::string& base) {
  for (const ag::CheckpointFile& f : ag::list_checkpoints(base)) {
    std::remove(f.path.c_str());
  }
}

void expect_params_bitwise_equal(RouteNet& a, RouteNet& b) {
  const std::vector<ag::Parameter*> pa = a.params();
  const std::vector<ag::Parameter*> pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->name, pb[i]->name);
    ASSERT_TRUE(pa[i]->value.same_shape(pb[i]->value)) << pa[i]->name;
    EXPECT_EQ(0, std::memcmp(
                     pa[i]->value.data(), pb[i]->value.data(),
                     sizeof(float) *
                         static_cast<std::size_t>(pa[i]->value.size())))
        << "parameter '" << pa[i]->name << "' differs bitwise";
  }
}

void expect_optimizer_state_bitwise_equal(const std::string& base_a,
                                          const std::string& base_b) {
  const ag::TrainCheckpoint a = ag::load_train_checkpoint_auto(base_a);
  const ag::TrainCheckpoint b = ag::load_train_checkpoint_auto(base_b);
  ASSERT_TRUE(a.has_optimizer);
  ASSERT_TRUE(b.has_optimizer);
  EXPECT_EQ(a.adam_step, b.adam_step);
  ASSERT_EQ(a.adam_m.size(), b.adam_m.size());
  for (std::size_t i = 0; i < a.adam_m.size(); ++i) {
    ASSERT_EQ(a.adam_m[i].first, b.adam_m[i].first);
    ASSERT_TRUE(a.adam_m[i].second.same_shape(b.adam_m[i].second));
    EXPECT_EQ(0,
              std::memcmp(a.adam_m[i].second.data(), b.adam_m[i].second.data(),
                          sizeof(float) * static_cast<std::size_t>(
                                              a.adam_m[i].second.size())))
        << "adam m '" << a.adam_m[i].first << "' differs bitwise";
    EXPECT_EQ(0,
              std::memcmp(a.adam_v[i].second.data(), b.adam_v[i].second.data(),
                          sizeof(float) * static_cast<std::size_t>(
                                              a.adam_v[i].second.size())))
        << "adam v '" << a.adam_v[i].first << "' differs bitwise";
  }
}

// Reference run (uninterrupted) vs. crash-at-batch-7 + resume, at a given
// thread count. 10 samples / batch 2 / 3 epochs = 15 batches total; the
// crash run checkpoints at batches 2, 4, 6 and dies cold at 7, so the
// resumed run replays batches 7–15 from the batch-6 checkpoint (or 5–15
// from batch 4 when the corruption variant knocks out the newest file).
void run_kill_resume(int threads, const std::string& tag,
                     bool corrupt_newest) {
  const std::vector<dataset::Sample> train = tiny_dataset(10, 21);
  const std::string ref_base = temp_base("resume_ref_" + tag + ".ckpt");
  const std::string run_base = temp_base("resume_run_" + tag + ".ckpt");
  remove_base(ref_base);
  remove_base(run_base);

  RouteNet reference(small_model());
  {
    Trainer trainer(reference, base_config(threads, ref_base));
    const TrainReport report = trainer.fit(train);
    ASSERT_FALSE(report.interrupted);
  }

  {
    RouteNet crashed(small_model());
    TrainConfig cfg = base_config(threads, run_base);
    cfg.checkpoint_every_n_batches = 2;
    cfg.max_batches = 7;  // dies cold mid-epoch-2, after the batch-6 save
    Trainer trainer(crashed, cfg);
    const TrainReport report = trainer.fit(train);
    EXPECT_TRUE(report.interrupted);
    EXPECT_FALSE(ag::list_checkpoints(run_base).empty());
  }

  if (corrupt_newest) {
    // Flip a payload byte of the newest checkpoint: resume must fall back
    // to the previous one and STILL converge to the reference bit pattern.
    const std::vector<ag::CheckpointFile> files = ag::list_checkpoints(run_base);
    ASSERT_GE(files.size(), 2u);
    std::fstream f(files.front().path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(40);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0xff);
    f.seekp(40);
    f.write(&c, 1);
  }

  RouteNet resumed(small_model());
  {
    TrainConfig cfg = base_config(threads, run_base);
    cfg.checkpoint_every_n_batches = 2;
    cfg.resume_from = run_base;
    Trainer trainer(resumed, cfg);
    const TrainReport report = trainer.fit(train);
    ASSERT_FALSE(report.interrupted);
    EXPECT_GE(report.resumed_epoch, 0);
  }

  expect_params_bitwise_equal(resumed, reference);
  expect_optimizer_state_bitwise_equal(run_base, ref_base);
  remove_base(ref_base);
  remove_base(run_base);
}

TEST(TrainerResume, KillAndResumeBitwiseIdenticalOneThread) {
  run_kill_resume(1, "t1", /*corrupt_newest=*/false);
}

TEST(TrainerResume, KillAndResumeBitwiseIdenticalFourThreads) {
  run_kill_resume(4, "t4", /*corrupt_newest=*/false);
}

TEST(TrainerResume, ResumeFallsBackPastCorruptCheckpoint) {
  run_kill_resume(1, "corrupt", /*corrupt_newest=*/true);
}

TEST(TrainerResume, ResumeRestoresBestEvalCursor) {
  // Early-stopping bookkeeping must survive the crash: resume from a
  // checkpoint taken mid-run and confirm the final report still tracks a
  // best epoch (i.e. the cursor came back, not a reset).
  const std::vector<dataset::Sample> train = tiny_dataset(8, 22);
  const std::vector<dataset::Sample> eval = tiny_dataset(3, 23);
  const std::string base = temp_base("resume_best.ckpt");
  remove_base(base);

  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 2;
  cfg.learning_rate = 5e-3f;
  cfg.threads = 1;
  cfg.state_path = base;
  cfg.checkpoint_every_n_batches = 3;

  RouteNet reference(small_model());
  TrainReport ref_report;
  {
    Trainer trainer(reference, cfg);
    ref_report = trainer.fit(train, &eval);
  }
  remove_base(base);

  RouteNet crashed(small_model());
  {
    TrainConfig crash_cfg = cfg;
    crash_cfg.max_batches = 10;  // two full epochs (4 batches each) + 2
    Trainer trainer(crashed, crash_cfg);
    const TrainReport report = trainer.fit(train, &eval);
    EXPECT_TRUE(report.interrupted);
  }

  RouteNet resumed(small_model());
  {
    TrainConfig resume_cfg = cfg;
    resume_cfg.resume_from = base;
    Trainer trainer(resumed, resume_cfg);
    const TrainReport report = trainer.fit(train, &eval);
    EXPECT_EQ(report.best_epoch, ref_report.best_epoch);
    EXPECT_EQ(report.best_eval_mre, ref_report.best_eval_mre);
  }
  expect_params_bitwise_equal(resumed, reference);
  remove_base(base);
}

TEST(TrainerResume, SigintSavesStateAndStops) {
  const std::vector<dataset::Sample> train = tiny_dataset(6, 24);
  const std::string base = temp_base("resume_sigint.ckpt");
  remove_base(base);

  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 100000;  // would run ~forever without the signal
  cfg.batch_size = 2;
  cfg.threads = 1;
  cfg.state_path = base;
  cfg.handle_signals = true;
  Trainer trainer(model, cfg);

  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::raise(SIGINT);
  });
  const TrainReport report = trainer.fit(train);
  killer.join();

  EXPECT_TRUE(report.interrupted);
  // The handler path saves before returning: the newest checkpoint must
  // exist, pass CRC, and carry a resumable cursor.
  const std::vector<ag::CheckpointFile> files = ag::list_checkpoints(base);
  ASSERT_FALSE(files.empty());
  const ag::TrainCheckpoint st = ag::load_train_checkpoint_auto(base);
  EXPECT_TRUE(st.has_cursor);
  EXPECT_TRUE(st.has_optimizer);
  EXPECT_GT(st.total_batches, 0u);
  remove_base(base);
}

TEST(TrainerResume, ResumeRejectsDatasetOfDifferentSize) {
  const std::vector<dataset::Sample> train = tiny_dataset(6, 25);
  const std::string base = temp_base("resume_wrong_ds.ckpt");
  remove_base(base);

  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 2;
  cfg.threads = 1;
  cfg.state_path = base;
  cfg.checkpoint_every_n_batches = 2;
  cfg.max_batches = 3;
  {
    Trainer trainer(model, cfg);
    trainer.fit(train);
  }

  const std::vector<dataset::Sample> smaller = tiny_dataset(4, 25);
  RouteNet other(small_model());
  TrainConfig resume_cfg = cfg;
  resume_cfg.max_batches = 0;
  resume_cfg.resume_from = base;
  Trainer trainer(other, resume_cfg);
  EXPECT_THROW(trainer.fit(smaller), std::runtime_error);
  remove_base(base);
}

TEST(TrainerResume, StreamedKillAndResumeBitwiseIdentical) {
  // Same kill-and-resume contract, but the corpus is an RNDS1 shard
  // streamed from disk: the epoch cursor records sample INDICES, not
  // storage, so a resume over a StreamingDataset replays the exact
  // minibatch sequence and lands on the uninterrupted bit pattern.
  dataset::GeneratorConfig gcfg;
  gcfg.target_pkts_per_flow = 60.0;
  gcfg.warmup_s = 0.5;
  gcfg.min_delivered = 5;
  auto topology = std::make_shared<const topo::Topology>(topo::ring(6));
  const std::string shard = temp_base("resume_stream.rnds");
  dataset::generate_shard(shard, gcfg, 21, topology, 10, 0, 1);

  const std::string ref_base = temp_base("resume_stream_ref.ckpt");
  const std::string run_base = temp_base("resume_stream_run.ckpt");
  remove_base(ref_base);
  remove_base(run_base);

  RouteNet reference(small_model());
  {
    dataset::StreamingDataset train(shard);
    Trainer trainer(reference, base_config(1, ref_base));
    const TrainReport report = trainer.fit(train);
    ASSERT_FALSE(report.interrupted);
  }

  {
    dataset::StreamingDataset train(shard);
    RouteNet crashed(small_model());
    TrainConfig cfg = base_config(1, run_base);
    cfg.checkpoint_every_n_batches = 2;
    cfg.max_batches = 7;  // dies cold mid-epoch-2, after the batch-6 save
    Trainer trainer(crashed, cfg);
    const TrainReport report = trainer.fit(train);
    EXPECT_TRUE(report.interrupted);
  }

  RouteNet resumed(small_model());
  {
    dataset::StreamingDataset train(shard);
    TrainConfig cfg = base_config(1, run_base);
    cfg.checkpoint_every_n_batches = 2;
    cfg.resume_from = run_base;
    Trainer trainer(resumed, cfg);
    const TrainReport report = trainer.fit(train);
    ASSERT_FALSE(report.interrupted);
  }

  expect_params_bitwise_equal(resumed, reference);
  expect_optimizer_state_bitwise_equal(run_base, ref_base);

  // Cross-container equivalence: the same 10 samples trained from RAM
  // must land on the same bits as the streamed reference run.
  const std::vector<dataset::Sample> in_ram = tiny_dataset(10, 21);
  const std::string ram_base = temp_base("resume_stream_ram.ckpt");
  remove_base(ram_base);
  RouteNet from_ram(small_model());
  {
    Trainer trainer(from_ram, base_config(1, ram_base));
    const TrainReport report = trainer.fit(in_ram);
    ASSERT_FALSE(report.interrupted);
  }
  expect_params_bitwise_equal(from_ram, reference);

  remove_base(ref_base);
  remove_base(run_base);
  remove_base(ram_base);
  std::remove(shard.c_str());
}

}  // namespace
}  // namespace rn::core
