#include "core/trainer.h"

#include <memory>

#include <gtest/gtest.h>

#include "topology/generators.h"

namespace rn::core {
namespace {

std::vector<dataset::Sample> tiny_dataset(int count, std::uint64_t seed) {
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  dataset::DatasetGenerator gen(cfg, seed);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(6));
  return gen.generate_many(topology, count);
}

RouteNetConfig small_model() {
  RouteNetConfig cfg;
  cfg.link_state_dim = 8;
  cfg.path_state_dim = 8;
  cfg.iterations = 3;
  cfg.readout_hidden = 12;
  return cfg;
}

TEST(Trainer, LossDecreases) {
  const std::vector<dataset::Sample> train = tiny_dataset(10, 1);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 4;
  cfg.learning_rate = 5e-3f;
  Trainer trainer(model, cfg);
  const TrainReport report = trainer.fit(train);
  ASSERT_GE(report.epochs.size(), 2u);
  EXPECT_LT(report.final_train_loss, report.epochs.front().train_loss);
}

TEST(Trainer, OverfitsSmallDataset) {
  const std::vector<dataset::Sample> train = tiny_dataset(12, 2);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 4;
  cfg.learning_rate = 5e-3f;
  Trainer trainer(model, cfg);
  trainer.fit(train);
  const double mre = Trainer::evaluate_delay_mre(model, train);
  EXPECT_LT(mre, 0.25);
}

TEST(Trainer, FitsNormalizerOnTrainingSet) {
  const std::vector<dataset::Sample> train = tiny_dataset(6, 3);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 1;
  Trainer trainer(model, cfg);
  trainer.fit(train);
  // Identity normalizer would keep log_delay_mean at 0; fitting must move it
  // toward the dataset's log-delay scale (sub-second delays → negative mean).
  EXPECT_LT(model.normalizer().log_delay_mean, -0.3);
  EXPECT_GT(model.normalizer().log_delay_std, 0.0);
}

TEST(Trainer, ReportsEvalMreWhenEvalGiven) {
  const std::vector<dataset::Sample> train = tiny_dataset(8, 4);
  const std::vector<dataset::Sample> eval = tiny_dataset(3, 5);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 3;
  Trainer trainer(model, cfg);
  const TrainReport report = trainer.fit(train, &eval);
  EXPECT_GE(report.best_epoch, 0);
  EXPECT_GT(report.best_eval_mre, 0.0);
  for (const EpochLog& log : report.epochs) {
    EXPECT_GE(log.eval_delay_mre, 0.0);
  }
}

TEST(Trainer, EarlyStoppingHonorsPatience) {
  const std::vector<dataset::Sample> train = tiny_dataset(6, 6);
  const std::vector<dataset::Sample> eval = tiny_dataset(2, 7);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 50;
  cfg.patience = 3;
  cfg.learning_rate = 0.5f;  // diverges → eval stops improving → early stop
  Trainer trainer(model, cfg);
  const TrainReport report = trainer.fit(train, &eval);
  EXPECT_LT(static_cast<int>(report.epochs.size()), 50);
}

TEST(Trainer, CheckpointWritesBestModel) {
  const std::vector<dataset::Sample> train = tiny_dataset(6, 8);
  const std::vector<dataset::Sample> eval = tiny_dataset(2, 9);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.checkpoint_path = ::testing::TempDir() + "trainer_ckpt.model";
  Trainer trainer(model, cfg);
  trainer.fit(train, &eval);
  const RouteNet restored = RouteNet::load(cfg.checkpoint_path);
  EXPECT_EQ(restored.config().iterations, model.config().iterations);
}

TEST(Trainer, TrainingImprovesOverUntrainedModel) {
  const std::vector<dataset::Sample> train = tiny_dataset(12, 10);
  const std::vector<dataset::Sample> eval = tiny_dataset(4, 11);
  RouteNet untrained(small_model());
  untrained.set_normalizer(dataset::fit_normalizer(train));
  const double mre_untrained = Trainer::evaluate_delay_mre(untrained, eval);

  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 4;
  cfg.learning_rate = 5e-3f;
  Trainer trainer(model, cfg);
  trainer.fit(train);
  const double mre_trained = Trainer::evaluate_delay_mre(model, eval);
  EXPECT_LT(mre_trained, mre_untrained);
}

TEST(Trainer, JitterHeadLearnsToo) {
  const std::vector<dataset::Sample> train = tiny_dataset(12, 12);
  RouteNet untrained(small_model());
  untrained.set_normalizer(dataset::fit_normalizer(train));
  const double before = Trainer::evaluate_jitter_mre(untrained, train);

  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 4;
  cfg.learning_rate = 5e-3f;
  cfg.jitter_loss_weight = 1.0f;
  Trainer trainer(model, cfg);
  trainer.fit(train);
  const double after = Trainer::evaluate_jitter_mre(model, train);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.5);
}

TEST(Trainer, LinearTargetAblationTrains) {
  const std::vector<dataset::Sample> train = tiny_dataset(8, 13);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.log_space_targets = false;
  Trainer trainer(model, cfg);
  const TrainReport report = trainer.fit(train);
  EXPECT_FALSE(model.normalizer().log_space);
  EXPECT_LT(report.final_train_loss, report.epochs.front().train_loss);
}

TEST(Trainer, DropoutModelTrainsAndInfersDeterministically) {
  const std::vector<dataset::Sample> train = tiny_dataset(8, 14);
  RouteNetConfig mcfg = small_model();
  mcfg.dropout = 0.3f;
  RouteNet model(mcfg);
  TrainConfig cfg;
  cfg.epochs = 8;
  Trainer trainer(model, cfg);
  const TrainReport report = trainer.fit(train);
  EXPECT_LT(report.final_train_loss, report.epochs.front().train_loss);
  // Inference never drops: repeated predictions are identical.
  const RouteNet::Prediction a = model.predict(train[0]);
  const RouteNet::Prediction b = model.predict(train[0]);
  for (std::size_t i = 0; i < a.delay_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_s[i], b.delay_s[i]);
  }
}

TEST(Trainer, RejectsBadConfig) {
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(Trainer(model, cfg), std::runtime_error);
  TrainConfig cfg2;
  cfg2.learning_rate = 0.0f;
  EXPECT_THROW(Trainer(model, cfg2), std::runtime_error);
}

TEST(Trainer, CheckpointRestoresBestEvalModelExactly) {
  // Train with checkpointing, reload the checkpoint, and confirm its eval
  // MRE equals the reported best (the checkpoint really is the best epoch,
  // not the last one).
  const std::vector<dataset::Sample> train = tiny_dataset(10, 15);
  const std::vector<dataset::Sample> eval = tiny_dataset(3, 16);
  RouteNet model(small_model());
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.learning_rate = 8e-3f;  // fast enough that eval MRE is non-monotone
  cfg.checkpoint_path = ::testing::TempDir() + "best_eval.model";
  Trainer trainer(model, cfg);
  const TrainReport report = trainer.fit(train, &eval);
  const RouteNet best = RouteNet::load(cfg.checkpoint_path);
  const double restored_mre = Trainer::evaluate_delay_mre(best, eval);
  EXPECT_NEAR(restored_mre, report.best_eval_mre,
              1e-9 + 1e-6 * report.best_eval_mre);
}

TEST(Trainer, RejectsEmptyTrainingSet) {
  RouteNet model(small_model());
  TrainConfig cfg;
  Trainer trainer(model, cfg);
  EXPECT_THROW(trainer.fit({}), std::runtime_error);
}

}  // namespace
}  // namespace rn::core
