# Network-serving smoke test (ctest -R serve_net_smoke): builds a tiny
# scenario + model with the real routenet CLI, starts `routenet serve
# --listen` on an ephemeral loopback TCP port in the background, and drives
# it over RNP/1 with `routenet query`: a single predict (human-readable
# table), a 4-client load-generation run, a hot reload, and a remote
# shutdown that must drain gracefully. The server's telemetry stream must
# carry the serve.net.run event, serve.net.* counters, and one
# serve.registry.swap per load/reload.
#
# Observability end-to-end: both sides run with --trace-out, and the single
# predict's printed request id must appear as a span arg ("rid":N) in BOTH
# trace files — one id linking the client's serve.client.request span to
# the server's queue.wait/batch.assemble/forward decomposition. Two
# `routenet obs top --count 1` scrapes bracket the load run and the
# serve.net.requests_total counter must grow between them. Invoked with
# -DRN_CLI=<binary> -DWORK_DIR=<dir>; POSIX sh backgrounds the server.

if(NOT DEFINED RN_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRN_CLI=... -DWORK_DIR=... -P serve_net_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(step_out "${out}" PARENT_SCOPE)
endfunction()

run_step("${RN_CLI}" make-topology --kind ring --nodes 6 --out net.topo)
run_step("${RN_CLI}" make-routing --topology net.topo --k 2 --seed 3
         --out net.routes)
run_step("${RN_CLI}" make-traffic --topology net.topo --routing net.routes
         --kind gravity --util 0.6 --out net.traffic)
run_step("${RN_CLI}" gen-dataset --topology net.topo --count 4
         --pkts-per-flow 30 --seed 5 --out mini.ds)
run_step("${RN_CLI}" train --dataset mini.ds --epochs 2 --batch 2 --dim 8
         --iterations 2 --out mini.model)

# Background the server on an ephemeral port (tcp:...:0). --address-file is
# written only after a successful bind, so polling for it doubles as the
# readiness check; the PID lets us confirm the process actually exits after
# the remote shutdown.
execute_process(
  COMMAND sh -c "'${RN_CLI}' serve --listen tcp:127.0.0.1:0 \
--model mini.model --address-file addr.txt --slo-ms 20 \
--batch-deadline-ms 2 --metrics-out server.jsonl \
--trace-out server_trace.json \
> server.log 2>&1 & echo $! > server.pid"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch background server (${rc})")
endif()

set(server_addr "")
foreach(attempt RANGE 100)
  if(EXISTS "${WORK_DIR}/addr.txt")
    file(READ "${WORK_DIR}/addr.txt" server_addr)
    string(STRIP "${server_addr}" server_addr)
    if(NOT server_addr STREQUAL "")
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(server_addr STREQUAL "")
  file(READ "${WORK_DIR}/server.log" server_log)
  message(FATAL_ERROR "server never published its address:\n${server_log}")
endif()
message(STATUS "server listening on ${server_addr}")

# Single remote predict: the per-pair table must name the worst pair, and
# the traced round trip must print its request id (captured below for the
# cross-file trace correlation check).
run_step("${RN_CLI}" query --connect "${server_addr}" --topology net.topo
         --routing net.routes --traffic net.traffic --top 3
         --trace-out client_trace.json)
string(FIND "${step_out}" "delay" found)
if(found EQUAL -1)
  message(FATAL_ERROR "single query printed no delay table:\n${step_out}")
endif()
string(REGEX MATCH "request id ([0-9]+)" _m "${step_out}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "single query printed no request id:\n${step_out}")
endif()
set(traced_rid "${CMAKE_MATCH_1}")
message(STATUS "single predict request id ${traced_rid}")

# First live scrape (obs top over the kStatsRequest frame): one refresh,
# capturing the request counter before the load run.
run_step("${RN_CLI}" obs top "${server_addr}" --count 1)
string(REGEX MATCH "serve\\.net\\.requests_total ([0-9]+)" _m "${step_out}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "first scrape has no requests_total:\n${step_out}")
endif()
set(requests_before "${CMAKE_MATCH_1}")

# Remote load generation: 4 concurrent clients, 48 requests, all of them
# must succeed (rejected may be non-zero only under an overloaded queue,
# which this sizing cannot produce). The summary must attribute the
# server's queue-wait share of the client round trip.
run_step("${RN_CLI}" query --connect "${server_addr}" --topology net.topo
         --routing net.routes --traffic net.traffic --requests 48
         --clients 4 --metrics-out client.jsonl)
string(FIND "${step_out}" "ok 48" found)
if(found EQUAL -1)
  message(FATAL_ERROR "load run did not serve all 48 requests:\n${step_out}")
endif()
string(FIND "${step_out}" "server queue wait:" found)
if(found EQUAL -1)
  message(FATAL_ERROR "load run printed no queue-wait share:\n${step_out}")
endif()
run_step("${RN_CLI}" obs summarize client.jsonl)

# Second scrape: the served load must show up as counter growth — the
# delta `obs top` renders live.
run_step("${RN_CLI}" obs top "${server_addr}" --count 1)
string(REGEX MATCH "serve\\.net\\.requests_total ([0-9]+)" _m "${step_out}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "second scrape has no requests_total:\n${step_out}")
endif()
set(requests_after "${CMAKE_MATCH_1}")
if(NOT requests_after GREATER requests_before)
  message(FATAL_ERROR "requests_total did not grow between scrapes: "
          "${requests_before} -> ${requests_after}")
endif()
message(STATUS "scrape delta: requests_total "
        "${requests_before} -> ${requests_after}")
# The scrape also renders the model table and the latency window.
string(FIND "${step_out}" "default v" found)
if(found EQUAL -1)
  message(FATAL_ERROR "scrape is missing the model table:\n${step_out}")
endif()
string(FIND "${step_out}" "serve.latency_s" found)
if(found EQUAL -1)
  message(FATAL_ERROR "scrape is missing the latency window:\n${step_out}")
endif()

# Hot reload over the wire bumps the model to version 2.
run_step("${RN_CLI}" query --connect "${server_addr}" --reload
         --model-name default)
string(FIND "${step_out}" "version 2" found)
if(found EQUAL -1)
  message(FATAL_ERROR "reload did not report version 2:\n${step_out}")
endif()

# Remote shutdown: the server must ack, drain, and exit on its own.
run_step("${RN_CLI}" query --connect "${server_addr}" --shutdown)

file(READ "${WORK_DIR}/server.pid" server_pid)
string(STRIP "${server_pid}" server_pid)
set(server_exited FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND kill -0 "${server_pid}"
                  RESULT_VARIABLE alive
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT alive EQUAL 0)
    set(server_exited TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT server_exited)
  execute_process(COMMAND kill -9 "${server_pid}" OUTPUT_QUIET ERROR_QUIET)
  file(READ "${WORK_DIR}/server.log" server_log)
  message(FATAL_ERROR "server did not exit after remote shutdown:\n${server_log}")
endif()

# The drained server prints its final tallies and its telemetry stream
# carries the network-path events: the run summary, per-frame counters,
# one registry swap for the initial load and one for the reload, and at
# least one adaptive-policy metric (--slo-ms was set).
file(READ "${WORK_DIR}/server.log" server_log)
foreach(needle "listening on tcp:127.0.0.1:" "server drained:" " 0 errors")
  string(FIND "${server_log}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "server.log is missing '${needle}':\n${server_log}")
  endif()
endforeach()

file(READ "${WORK_DIR}/server.jsonl" metrics_log)
foreach(needle "\"kind\":\"serve.net.run\"" "\"kind\":\"serve.net.listen\""
        "serve.net.requests_total" "serve.net.responses_total"
        "serve.net.bytes_rx_total" "\"kind\":\"serve.registry.swap\""
        "serve.policy.ticks_total" "\"rejected\":0")
  string(FIND "${metrics_log}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "server.jsonl is missing ${needle}")
  endif()
endforeach()
run_step("${RN_CLI}" obs summarize server.jsonl)

# End-to-end trace correlation: the request id the single predict printed
# must tag spans in BOTH trace files — the client's round-trip span and the
# server's read/decode/queue/batch/forward/write decomposition. That is the
# merged-timeline acceptance: one id, two processes, one request.
file(READ "${WORK_DIR}/client_trace.json" client_trace)
foreach(needle "serve.client.request" "\"rid\":${traced_rid}")
  string(FIND "${client_trace}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "client_trace.json is missing ${needle}")
  endif()
endforeach()
file(READ "${WORK_DIR}/server_trace.json" server_trace)
foreach(needle "serve.net.request" "serve.net.read" "serve.net.write"
        "serve.queue.wait" "serve.batch.assemble" "serve.forward"
        "\"rid\":${traced_rid}")
  string(FIND "${server_trace}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "server_trace.json is missing ${needle}")
  endif()
endforeach()
run_step("${RN_CLI}" obs trace server_trace.json)

message(STATUS "serve net smoke OK")
