# Bench-regression-gate smoke test (ctest -R obs_diff_smoke): runs one
# report bench twice at the seconds-scale "smoke" tier (the second run hits
# the model/dataset cache), then drives `routenet obs diff` over the
# resulting BENCH_*.json reports — rc 0 on an identical pair, rc 1 on a
# doctored copy with a regressed wall time, rc 2 on bad usage. Invoked with
# -DRN_CLI=<routenet> -DBENCH_BIN=<fig2_regression> -DWORK_DIR=<dir>.

if(NOT DEFINED RN_CLI OR NOT DEFINED BENCH_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "usage: cmake -DRN_CLI=... -DBENCH_BIN=... -DWORK_DIR=... -P obs_diff_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{RN_BENCH_SCALE} "smoke")
set(ENV{RN_BENCH_CACHE} "${WORK_DIR}/cache")

function(run_bench)
  execute_process(COMMAND "${BENCH_BIN}"
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench run failed (${rc}):\n${out}\n${err}")
  endif()
endfunction()

function(run_diff expected_rc)
  execute_process(COMMAND "${RN_CLI}" obs diff ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "obs diff ${ARGN} returned ${rc}, expected ${expected_rc}\n${out}\n${err}")
  endif()
  set(diff_out "${out}" PARENT_SCOPE)
endfunction()

set(report "${WORK_DIR}/cache/BENCH_fig2_regression.json")

# First run trains the tiny model; its report becomes the baseline.
run_bench()
if(NOT EXISTS "${report}")
  message(FATAL_ERROR "bench did not write ${report}")
endif()
configure_file("${report}" "${WORK_DIR}/run_a.json" COPYONLY)

# The report must carry the stable telemetry keys the gate compares:
# histogram p99s and the sliding-window section.
file(READ "${WORK_DIR}/run_a.json" report_json)
foreach(needle "\"p99\":" "\"windows\":" "\"telemetry\":" "\"sampled_out\":")
  string(FIND "${report_json}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "BENCH report is missing the ${needle} key")
  endif()
endforeach()

# Second run replays from the cache and must produce the same schema.
run_bench()
configure_file("${report}" "${WORK_DIR}/run_b.json" COPYONLY)

# Identical reports pass the gate.
configure_file("${WORK_DIR}/run_a.json" "${WORK_DIR}/run_a_copy.json" COPYONLY)
run_diff(0 run_a.json run_a_copy.json)
string(FIND "${diff_out}" "0 regression(s)" found)
if(found EQUAL -1)
  message(FATAL_ERROR "identical diff did not report 0 regressions:\n${diff_out}")
endif()

# Run-to-run: the two reports share a comparable key set (schema stability
# across the cache-hit path). Timing jitter may legitimately gate, so only
# the exit-code class is asserted, not the verdict.
run_diff(0 run_b.json run_b.json)
execute_process(COMMAND "${RN_CLI}" obs diff run_a.json run_b.json
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc GREATER 1)
  message(FATAL_ERROR "run-to-run diff errored (${rc}):\n${out}\n${err}")
endif()
string(REGEX MATCH "[1-9][0-9]* metrics compared" compared_match "${out}")
if(compared_match STREQUAL "")
  message(FATAL_ERROR "run-to-run diff compared no metrics:\n${out}")
endif()

# A doctored candidate with a 100x wall-time regression fails the gate.
file(READ "${WORK_DIR}/run_b.json" doctored)
string(REGEX REPLACE "\"bench.wall_s\":[0-9.eE+-]+"
       "\"bench.wall_s\":99999.0" doctored "${doctored}")
string(FIND "${doctored}" "\"bench.wall_s\":99999.0" found)
if(found EQUAL -1)
  message(FATAL_ERROR "failed to doctor bench.wall_s in run_b.json")
endif()
file(WRITE "${WORK_DIR}/doctored.json" "${doctored}")
run_diff(1 run_a.json doctored.json)
string(FIND "${diff_out}" "REGRESSION" found)
if(found EQUAL -1)
  message(FATAL_ERROR "doctored diff did not flag a REGRESSION:\n${diff_out}")
endif()

# Bad usage stays distinguishable from a failed gate.
run_diff(2 run_a.json)
run_diff(1 run_a.json nonexistent.json)

message(STATUS "obs diff smoke OK")
