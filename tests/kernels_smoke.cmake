# Kernel-bench smoke test (ctest -R kernels_smoke): runs bench/matmul_kernels
# twice at the seconds-scale "smoke" tier with RN_BENCH_ENFORCE=1 — so the
# blocked-vs-naive guard, the avx2-vs-scalar bitwise check, and (where avx2
# exists) the >=1.5x speedup gate are all load-bearing — then drives
# `routenet obs diff` over the resulting BENCH_kernels.json reports: rc 0 on
# an identical pair, rc 1 on a doctored copy with cratered GFLOP/s, rc <= 1
# run-to-run (timing jitter may legitimately gate). Invoked with
# -DRN_CLI=<routenet> -DBENCH_BIN=<matmul_kernels> -DWORK_DIR=<dir>.

if(NOT DEFINED RN_CLI OR NOT DEFINED BENCH_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "usage: cmake -DRN_CLI=... -DBENCH_BIN=... -DWORK_DIR=... -P kernels_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{RN_BENCH_SCALE} "smoke")
set(ENV{RN_BENCH_CACHE} "${WORK_DIR}/cache")
set(ENV{RN_BENCH_ENFORCE} "1")

function(run_bench)
  execute_process(COMMAND "${BENCH_BIN}"
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "matmul_kernels failed under enforcement (${rc}):\n${out}\n${err}")
  endif()
endfunction()

function(run_diff expected_rc)
  execute_process(COMMAND "${RN_CLI}" obs diff ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "obs diff ${ARGN} returned ${rc}, expected ${expected_rc}\n${out}\n${err}")
  endif()
  set(diff_out "${out}" PARENT_SCOPE)
endfunction()

set(report "${WORK_DIR}/cache/BENCH_kernels.json")

run_bench()
if(NOT EXISTS "${report}")
  message(FATAL_ERROR "bench did not write ${report}")
endif()
configure_file("${report}" "${WORK_DIR}/run_a.json" COPYONLY)

# The report must carry the backend comparison the gate reads: per-shape
# GFLOP/s for the scalar anchor, the fused-GRU section with its bitwise
# verdict, and the telemetry snapshot.
file(READ "${WORK_DIR}/run_a.json" report_json)
foreach(needle
        "\"scalar_nn_gflops\":" "\"matmul_shapes\":" "\"index_ops\":"
        "\"gru_step\":" "\"bitwise_identical\":true" "\"telemetry\":")
  string(FIND "${report_json}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "BENCH_kernels.json is missing ${needle}")
  endif()
endforeach()

run_bench()
configure_file("${report}" "${WORK_DIR}/run_b.json" COPYONLY)

# Identical reports pass the gate.
configure_file("${WORK_DIR}/run_a.json" "${WORK_DIR}/run_a_copy.json" COPYONLY)
run_diff(0 run_a.json run_a_copy.json)
string(FIND "${diff_out}" "0 regression(s)" found)
if(found EQUAL -1)
  message(FATAL_ERROR "identical diff did not report 0 regressions:\n${diff_out}")
endif()

# Run-to-run: schema must stay comparable; jitter may gate, so only the
# exit-code class is asserted.
execute_process(COMMAND "${RN_CLI}" obs diff run_a.json run_b.json
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc GREATER 1)
  message(FATAL_ERROR "run-to-run diff errored (${rc}):\n${out}\n${err}")
endif()
string(REGEX MATCH "[1-9][0-9]* metrics compared" compared_match "${out}")
if(compared_match STREQUAL "")
  message(FATAL_ERROR "run-to-run diff compared no metrics:\n${out}")
endif()

# A doctored candidate whose scalar nn GFLOP/s cratered fails the gate
# (gflops keys are higher-is-better).
file(READ "${WORK_DIR}/run_b.json" doctored)
string(REGEX REPLACE "\"scalar_nn_gflops\":[0-9.eE+-]+"
       "\"scalar_nn_gflops\":0.0001" doctored "${doctored}")
string(FIND "${doctored}" "\"scalar_nn_gflops\":0.0001" found)
if(found EQUAL -1)
  message(FATAL_ERROR "failed to doctor scalar_nn_gflops in run_b.json")
endif()
file(WRITE "${WORK_DIR}/doctored.json" "${doctored}")
run_diff(1 run_a.json doctored.json)
string(FIND "${diff_out}" "REGRESSION" found)
if(found EQUAL -1)
  message(FATAL_ERROR "doctored diff did not flag a REGRESSION:\n${diff_out}")
endif()

# Bad usage stays distinguishable from a failed gate.
run_diff(2 run_a.json)

message(STATUS "kernels smoke OK")
