// Parameterized property suites: invariants swept across loads, traffic
// models, topologies, sizes, and seeds (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "queueing/queueing.h"
#include "sim/simulator.h"
#include "topology/generators.h"
#include "traffic/traffic.h"

namespace rn {
namespace {

// --- M/M/1 closed-form sweep over utilization -------------------------------

class Mm1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Mm1Sweep, SimulatorMatchesClosedFormAcrossLoads) {
  const double rho = GetParam();
  const double cap = 10'000.0;          // μ = 10 pkt/s at 1000-bit packets
  const double rate = rho * cap;
  topo::Topology t("mm1", 2);
  t.add_link(0, 1, cap);
  routing::RoutingScheme scheme(2);
  scheme.set_path(0, 1, {0});
  scheme.set_path(1, 0, {});
  traffic::TrafficMatrix tm(2);
  tm.set_rate_bps(0, 1, rate);

  sim::SimConfig cfg;
  cfg.warmup_s = 100.0;
  cfg.horizon_s = 100.0 + 3'000.0;  // ~3k·ρ·10 packets post-warmup
  cfg.seed = 1234;
  const sim::SimResult res = sim::PacketSimulator(cfg).run(t, scheme, tm);
  const double mu = 10.0, lambda = rho * 10.0;
  const double expected = 1.0 / (mu - lambda);
  const auto idx = static_cast<std::size_t>(topo::pair_index(0, 1, 2));
  EXPECT_NEAR(res.paths[idx].mean_delay_s, expected, 0.12 * expected)
      << "rho=" << rho;
  EXPECT_NEAR(res.links[0].utilization, rho, 0.035) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, Mm1Sweep,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8));

// --- M/G/1 analytic vs simulator across packet-size models ------------------

class Mg1SizeModels
    : public ::testing::TestWithParam<traffic::PacketSizeModel> {};

TEST_P(Mg1SizeModels, AnalyticMatchesSimulatorOnPoissonArrivals) {
  traffic::TrafficModel model;
  model.sizes = GetParam();
  topo::Topology t("mg1", 2);
  t.add_link(0, 1, 10'000.0);
  routing::RoutingScheme scheme(2);
  scheme.set_path(0, 1, {0});
  scheme.set_path(1, 0, {});
  traffic::TrafficMatrix tm(2);
  tm.set_rate_bps(0, 1, 6'000.0);  // ρ = 0.6

  sim::SimConfig cfg;
  cfg.warmup_s = 100.0;
  cfg.horizon_s = 2'100.0;
  cfg.model = model;
  cfg.seed = 77;
  const sim::SimResult res = sim::PacketSimulator(cfg).run(t, scheme, tm);
  const queueing::AnalyticPrediction pred =
      queueing::QueueingPredictor{model}.predict(t, scheme, tm);
  const auto idx = static_cast<std::size_t>(topo::pair_index(0, 1, 2));
  EXPECT_NEAR(pred.delay_s[idx], res.paths[idx].mean_delay_s,
              0.15 * pred.delay_s[idx]);
  // Jitter (std of sojourn) should also agree reasonably for M/G/1.
  EXPECT_NEAR(pred.jitter_s[idx], res.paths[idx].jitter_s,
              0.25 * pred.jitter_s[idx]);
}

INSTANTIATE_TEST_SUITE_P(SizeModels, Mg1SizeModels,
                         ::testing::Values(
                             traffic::PacketSizeModel::kExponential,
                             traffic::PacketSizeModel::kFixed,
                             traffic::PacketSizeModel::kBimodal,
                             traffic::PacketSizeModel::kTruncatedPareto));

// --- pair_index bijection across node counts --------------------------------

class PairIndexSweep : public ::testing::TestWithParam<int> {};

TEST_P(PairIndexSweep, BijectionHolds) {
  const int n = GetParam();
  for (int idx = 0; idx < n * (n - 1); ++idx) {
    const auto [s, d] = topo::pair_from_index(idx, n);
    EXPECT_NE(s, d);
    EXPECT_EQ(topo::pair_index(s, d, n), idx);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PairIndexSweep,
                         ::testing::Values(2, 3, 5, 14, 24, 50));

// --- Routing validity across topologies and k -------------------------------

struct RoutingCase {
  const char* name;
  int k;
};

class RoutingSweep : public ::testing::TestWithParam<RoutingCase> {
 protected:
  topo::Topology make_topology() const {
    const std::string name = GetParam().name;
    if (name == "nsfnet") return topo::nsfnet();
    if (name == "geant2") return topo::geant2();
    if (name == "ring8") return topo::ring(8);
    Rng rng(3);
    return topo::synthetic_ba(20, 2, rng);
  }
};

TEST_P(RoutingSweep, RandomKShortestAlwaysValid) {
  const topo::Topology t = make_topology();
  Rng rng(17);
  const routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(t, GetParam().k, rng);
  EXPECT_NO_THROW(routing::validate_routing(t, scheme));
  // Paths can never be longer than the node count (loop-free).
  for (int idx = 0; idx < scheme.num_pairs(); ++idx) {
    EXPECT_LT(static_cast<int>(scheme.path_by_index(idx).size()),
              t.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, RoutingSweep,
    ::testing::Values(RoutingCase{"nsfnet", 1}, RoutingCase{"nsfnet", 4},
                      RoutingCase{"geant2", 3}, RoutingCase{"ring8", 2},
                      RoutingCase{"ba20", 3}),
    [](const ::testing::TestParamInfo<RoutingCase>& info) {
      return std::string(info.param.name) + "_k" +
             std::to_string(info.param.k);
    });

// --- Simulator invariants across seeds ---------------------------------------

class SimInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimInvariants, ConservationAndBounds) {
  const topo::Topology t = topo::nsfnet();
  Rng rng(GetParam());
  const routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(t, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(t.num_nodes(), 20.0, 120.0, rng);
  traffic::scale_to_max_utilization(tm, t, scheme, 0.65);
  sim::SimConfig cfg;
  cfg.warmup_s = 0.5;
  cfg.horizon_s = 25.0;
  cfg.seed = GetParam() * 31 + 7;
  const sim::SimResult res = sim::PacketSimulator(cfg).run(t, scheme, tm);

  std::size_t delivered = 0;
  for (int idx = 0; idx < t.num_pairs(); ++idx) {
    const sim::PathStats& ps = res.paths[static_cast<std::size_t>(idx)];
    delivered += ps.delivered;
    if (ps.delivered == 0) continue;
    // Physical lower bound: delay >= sum of minimum transmission times
    // (packet sizes are >= 1 bit, so this is loose but must hold for the
    // mean with realistic packets ~ mean service per hop shrinks; use 0).
    EXPECT_GT(ps.mean_delay_s, 0.0);
    EXPECT_GE(ps.jitter_s, 0.0);
  }
  EXPECT_LE(delivered, res.packets_created);
  for (const sim::LinkStats& ls : res.links) {
    EXPECT_GE(ls.utilization, 0.0);
    EXPECT_LE(ls.utilization, 1.0);
    EXPECT_GE(ls.mean_queue_pkts, 0.0);
  }
  // Offered max utilization 0.65 → no link should measure above ~0.8.
  for (const sim::LinkStats& ls : res.links) {
    EXPECT_LT(ls.utilization, 0.85);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// --- Scheduling disciplines preserve core invariants --------------------------

class SchedulerSweep : public ::testing::TestWithParam<sim::Scheduling> {};

TEST_P(SchedulerSweep, ConservationHoldsUnderEveryDiscipline) {
  const topo::Topology t = topo::gbn();
  Rng rng(31);
  const routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(t, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(t.num_nodes(), 20.0, 120.0, rng);
  traffic::scale_to_max_utilization(tm, t, scheme, 0.7);
  sim::SimConfig cfg;
  cfg.warmup_s = 0.5;
  cfg.horizon_s = 20.5;
  cfg.scheduling = GetParam();
  cfg.num_classes = 2;
  cfg.class_of_flow = [](int idx) { return idx % 2; };
  const sim::SimResult res = sim::PacketSimulator(cfg).run(t, scheme, tm);
  std::size_t delivered = 0;
  for (const sim::PathStats& ps : res.paths) delivered += ps.delivered;
  EXPECT_GT(delivered, 0u);
  EXPECT_LE(delivered, res.packets_created);
  for (const sim::LinkStats& ls : res.links) {
    EXPECT_LE(ls.utilization, 1.0);
    EXPECT_GE(ls.mean_queue_pkts, 0.0);
  }
}

TEST_P(SchedulerSweep, LowLoadAllDisciplinesAgree) {
  // With no queueing contention the discipline is irrelevant: delays are
  // transmission-time dominated and must match across schedulers.
  const topo::Topology t = topo::ring(5, 100'000.0);
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  traffic::TrafficMatrix tm(5);
  tm.set_rate_bps(0, 2, 500.0);  // ρ ≈ 0.005
  sim::SimConfig cfg;
  cfg.warmup_s = 1.0;
  cfg.horizon_s = 2'001.0;
  cfg.scheduling = GetParam();
  cfg.num_classes = 2;
  const sim::SimResult res = sim::PacketSimulator(cfg).run(t, scheme, tm);
  const auto idx = static_cast<std::size_t>(topo::pair_index(0, 2, 5));
  // Two hops at 100 kbps, 1000-bit mean packets → ~20 ms.
  EXPECT_NEAR(res.paths[idx].mean_delay_s, 0.020, 0.004);
}

INSTANTIATE_TEST_SUITE_P(Disciplines, SchedulerSweep,
                         ::testing::Values(
                             sim::Scheduling::kFifo,
                             sim::Scheduling::kStrictPriority,
                             sim::Scheduling::kDeficitRoundRobin));

// --- BA generator across attachment counts ------------------------------------

class BaSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaSweep, EdgeCountFormulaAndConnectivity) {
  const int m = GetParam();
  Rng rng(7);
  const int n = 30;
  const topo::Topology t = topo::synthetic_ba(n, m, rng);
  // seed clique of (m+1) nodes: m(m+1)/2 edges; then (n-m-1) nodes × m.
  const int expected_edges = m * (m + 1) / 2 + (n - m - 1) * m;
  EXPECT_EQ(t.num_links(), 2 * expected_edges);
  EXPECT_TRUE(t.is_strongly_connected());
}

INSTANTIATE_TEST_SUITE_P(AttachmentCounts, BaSweep,
                         ::testing::Values(1, 2, 3, 4));

// --- Traffic scaling across targets -----------------------------------------

class UtilSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilSweep, ScaleHitsTargetExactly) {
  const topo::Topology t = topo::geant2();
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  Rng rng(5);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(t.num_nodes(), 1.0, 9.0, rng);
  traffic::scale_to_max_utilization(tm, t, scheme, GetParam());
  const std::vector<double> loads = traffic::link_loads_bps(t, scheme, tm);
  double max_util = 0.0;
  for (topo::LinkId id = 0; id < t.num_links(); ++id) {
    max_util = std::max(max_util, loads[static_cast<std::size_t>(id)] /
                                      t.link(id).capacity_bps);
  }
  EXPECT_NEAR(max_util, GetParam(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, UtilSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace rn
