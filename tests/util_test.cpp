#include <cmath>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rn {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    RN_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("one is not two"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(RN_CHECK(true, "never"));
}

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0};
  Welford w;
  for (double x : xs) w.add(x);
  EXPECT_EQ(w.count(), 5u);
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  double var = 0.0;
  for (double x : xs) var += (x - 4.0) * (x - 4.0);
  var /= 5.0;
  EXPECT_NEAR(w.variance(), var, 1e-12);
  EXPECT_NEAR(w.stddev(), std::sqrt(var), 1e-12);
}

TEST(Welford, FewSamplesHaveZeroVariance) {
  Welford w;
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(Welford, MergeEqualsSinglePass) {
  Rng rng(3);
  Welford all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(Quantile, KnownPercentiles) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 1.0}, 0.5), 0.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::runtime_error);
  EXPECT_THROW(quantile({1.0}, 1.5), std::runtime_error);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(3);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++counts[rng.weighted_pick({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.fork();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(child.uniform(0.0, 1.0), a.uniform(0.0, 1.0));
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean_of({}), std::runtime_error);
}

}  // namespace
}  // namespace rn
