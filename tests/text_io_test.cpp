#include <sstream>

#include <gtest/gtest.h>

#include "routing/text_io.h"
#include "topology/generators.h"
#include "topology/text_io.h"
#include "traffic/text_io.h"

namespace rn {
namespace {

TEST(TopologyTextIo, RoundTripPreservesGraph) {
  const topo::Topology original = topo::nsfnet();
  std::stringstream buf;
  topo::save_topology(buf, original);
  const topo::Topology loaded = topo::load_topology(buf);
  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.num_links(), original.num_links());
  for (topo::LinkId id = 0; id < original.num_links(); ++id) {
    EXPECT_EQ(loaded.link(id).src, original.link(id).src);
    EXPECT_EQ(loaded.link(id).dst, original.link(id).dst);
    EXPECT_DOUBLE_EQ(loaded.link(id).capacity_bps,
                     original.link(id).capacity_bps);
  }
}

TEST(TopologyTextIo, ParsesDuplexAndComments) {
  std::stringstream buf(
      "# my test network\n"
      "topology demo 3\n"
      "duplex 0 1 10000   # fast pair\n"
      "link 1 2 5000 0.002\n");
  const topo::Topology t = topo::load_topology(buf);
  EXPECT_EQ(t.name(), "demo");
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.num_links(), 3);
  EXPECT_TRUE(t.find_link(1, 0).has_value());
  EXPECT_DOUBLE_EQ(t.link(2).prop_delay_s, 0.002);
}

TEST(TopologyTextIo, RejectsMissingHeader) {
  std::stringstream buf("link 0 1 1000\n");
  EXPECT_THROW(topo::load_topology(buf), std::runtime_error);
}

TEST(TopologyTextIo, RejectsUnknownDirective) {
  std::stringstream buf("topology t 2\nedge 0 1 1000\n");
  EXPECT_THROW(topo::load_topology(buf), std::runtime_error);
}

TEST(TopologyTextIo, RejectsMalformedLink) {
  std::stringstream buf("topology t 2\nlink 0 1\n");
  EXPECT_THROW(topo::load_topology(buf), std::runtime_error);
}

TEST(TrafficTextIo, RoundTripPreservesRates) {
  Rng rng(1);
  const traffic::TrafficMatrix original =
      traffic::uniform_traffic(5, 10.0, 50.0, rng);
  std::stringstream buf;
  traffic::save_traffic_csv(buf, original);
  const traffic::TrafficMatrix loaded = traffic::load_traffic_csv(buf, 5);
  for (int idx = 0; idx < original.num_pairs(); ++idx) {
    EXPECT_DOUBLE_EQ(loaded.rate_by_index(idx), original.rate_by_index(idx));
  }
}

TEST(TrafficTextIo, OmitsZeroRows) {
  traffic::TrafficMatrix tm(3);
  tm.set_rate_bps(0, 1, 100.0);
  std::stringstream buf;
  traffic::save_traffic_csv(buf, tm);
  int lines = 0;
  std::string line;
  while (std::getline(buf, line)) ++lines;
  EXPECT_EQ(lines, 2);  // header + one row
}

TEST(TrafficTextIo, RejectsMissingHeader) {
  std::stringstream buf("0,1,100\n");
  EXPECT_THROW(traffic::load_traffic_csv(buf, 3), std::runtime_error);
}

TEST(RoutingTextIo, RoundTripPreservesPaths) {
  const topo::Topology t = topo::geant2();
  const routing::RoutingScheme original = routing::shortest_path_routing(t);
  std::stringstream buf;
  routing::save_routing(buf, t, original);
  const routing::RoutingScheme loaded = routing::load_routing(buf, t);
  for (int idx = 0; idx < original.num_pairs(); ++idx) {
    EXPECT_EQ(loaded.path_by_index(idx), original.path_by_index(idx));
  }
  EXPECT_NO_THROW(routing::validate_routing(t, loaded));
}

TEST(RoutingTextIo, RejectsNonexistentHop) {
  const topo::Topology t = topo::line(4);
  std::stringstream buf("0 3 : 0 2 3\n");  // no 0->2 link in a line
  EXPECT_THROW(routing::load_routing(buf, t), std::runtime_error);
}

TEST(RoutingTextIo, RejectsSequenceNotEndingAtDst) {
  const topo::Topology t = topo::line(4);
  std::stringstream buf("0 3 : 0 1 2\n");
  EXPECT_THROW(routing::load_routing(buf, t), std::runtime_error);
}

TEST(RoutingTextIo, SkipsBlankAndCommentLines) {
  const topo::Topology t = topo::line(3);
  std::stringstream buf("# routes\n\n0 2 : 0 1 2\n");
  const routing::RoutingScheme scheme = routing::load_routing(buf, t);
  EXPECT_EQ(scheme.path(0, 2).size(), 2u);
}

}  // namespace
}  // namespace rn
