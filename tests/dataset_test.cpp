#include "dataset/dataset.h"

#include <cmath>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "topology/generators.h"

namespace rn::dataset {
namespace {

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  return cfg;
}

std::shared_ptr<const topo::Topology> shared_nsfnet() {
  return std::make_shared<const topo::Topology>(topo::nsfnet());
}

TEST(DatasetGenerator, SampleShapeAndValidity) {
  DatasetGenerator gen(fast_config(), 1);
  const Sample s = gen.generate(shared_nsfnet());
  EXPECT_EQ(s.num_pairs(), 14 * 13);
  EXPECT_EQ(static_cast<int>(s.jitter_s.size()), s.num_pairs());
  // Most paths must carry usable statistics.
  EXPECT_GT(s.num_valid(), s.num_pairs() / 2);
  EXPECT_GT(s.max_link_utilization, 0.0);
  EXPECT_LT(s.max_link_utilization, 1.0);
  EXPECT_NO_THROW(routing::validate_routing(*s.topology, s.routing));
}

TEST(DatasetGenerator, ValidPathsHavePositiveTargets) {
  DatasetGenerator gen(fast_config(), 2);
  const Sample s = gen.generate(shared_nsfnet());
  for (int idx = 0; idx < s.num_pairs(); ++idx) {
    if (!s.valid[static_cast<std::size_t>(idx)]) continue;
    EXPECT_GT(s.delay_s[static_cast<std::size_t>(idx)], 0.0);
    EXPECT_GE(s.jitter_s[static_cast<std::size_t>(idx)], 0.0);
  }
}

TEST(DatasetGenerator, SamplesVaryAcrossDraws) {
  DatasetGenerator gen(fast_config(), 3);
  const auto topo_ptr = shared_nsfnet();
  const Sample a = gen.generate(topo_ptr);
  const Sample b = gen.generate(topo_ptr);
  EXPECT_NE(a.tm.rate_by_index(0), b.tm.rate_by_index(0));
}

TEST(DatasetGenerator, DeterministicForSameSeed) {
  const auto topo_ptr = shared_nsfnet();
  DatasetGenerator g1(fast_config(), 7);
  DatasetGenerator g2(fast_config(), 7);
  const Sample a = g1.generate(topo_ptr);
  const Sample b = g2.generate(topo_ptr);
  EXPECT_EQ(a.delay_s, b.delay_s);
  EXPECT_EQ(a.tm.rate_by_index(5), b.tm.rate_by_index(5));
}

TEST(DatasetGenerator, GenerateManyWithProgress) {
  DatasetGenerator gen(fast_config(), 4);
  int calls = 0;
  const std::vector<Sample> samples = gen.generate_many(
      shared_nsfnet(), 3, [&](std::uint64_t done, std::uint64_t total) {
        ++calls;
        EXPECT_LE(done, total);
      });
  EXPECT_EQ(samples.size(), 3u);
  EXPECT_EQ(calls, 3);
}

TEST(DatasetGenerator, GenerateRangeMatchesGenerateMany) {
  const auto topo_ptr = shared_nsfnet();
  DatasetGenerator cursor_gen(fast_config(), 21);
  const std::vector<Sample> via_many = cursor_gen.generate_many(topo_ptr, 4);
  const DatasetGenerator range_gen(fast_config(), 21);
  const std::vector<Sample> tail = range_gen.generate_range(topo_ptr, 2, 2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].delay_s, via_many[2].delay_s);
  EXPECT_EQ(tail[1].delay_s, via_many[3].delay_s);
}

TEST(Serialization, SaveIsAtomic) {
  // save_dataset goes through temp + rename: no *.tmp litter afterwards,
  // and an existing file is replaced wholesale, never torn.
  DatasetGenerator gen(fast_config(), 22);
  const std::vector<Sample> samples = gen.generate_many(shared_nsfnet(), 1);
  const std::string path = ::testing::TempDir() + "atomic_ds.bin";
  save_dataset(path, samples);
  save_dataset(path, samples);  // overwrite must also succeed
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  EXPECT_EQ(load_dataset(path).size(), 1u);
}

TEST(DatasetGenerator, UtilizationStaysInConfiguredRange) {
  GeneratorConfig cfg = fast_config();
  cfg.min_util = 0.4;
  cfg.max_util = 0.6;
  DatasetGenerator gen(cfg, 11);
  const std::vector<Sample> samples = gen.generate_many(shared_nsfnet(), 6);
  for (const Sample& s : samples) {
    EXPECT_GE(s.max_link_utilization, 0.4);
    EXPECT_LT(s.max_link_utilization, 0.6);
  }
}

TEST(DatasetGenerator, MatrixKindsProduceDistinctShapes) {
  // Restricting to a single kind must still work, and gravity matrices have
  // every pair active while hotspot ones are skewed.
  GeneratorConfig cfg = fast_config();
  cfg.matrix_kinds = {MatrixKind::kGravity};
  DatasetGenerator gen(cfg, 12);
  const Sample s = gen.generate(shared_nsfnet());
  for (int idx = 0; idx < s.num_pairs(); ++idx) {
    EXPECT_GT(s.tm.rate_by_index(idx), 0.0);
  }
}

TEST(DatasetGenerator, MinDeliveredThresholdMarksInvalid) {
  // An absurdly high validity threshold must invalidate everything while
  // the same simulation with threshold 1 validates most paths.
  GeneratorConfig strict = fast_config();
  strict.min_delivered = 1'000'000;
  DatasetGenerator gen(strict, 13);
  const Sample s = gen.generate(shared_nsfnet());
  EXPECT_EQ(s.num_valid(), 0);
}

TEST(DatasetGenerator, BurstyTrafficModelFlowsThrough) {
  GeneratorConfig cfg = fast_config();
  cfg.model.arrivals = traffic::ArrivalProcess::kOnOff;
  cfg.model.on_fraction = 0.4;
  cfg.model.mean_on_s = 0.3;
  DatasetGenerator gen(cfg, 14);
  const Sample s = gen.generate(shared_nsfnet());
  EXPECT_GT(s.num_valid(), 0);
}

TEST(Normalizer, RoundTripsDelay) {
  Normalizer n;
  n.log_delay_mean = -2.0;
  n.log_delay_std = 0.7;
  const double z = n.normalize_delay(0.05);
  EXPECT_NEAR(n.denormalize_delay(z), 0.05, 1e-12);
}

TEST(Normalizer, LinearSpaceRoundTripsAndAllowsNegatives) {
  Normalizer n;
  n.log_space = false;
  n.log_delay_mean = 0.1;
  n.log_delay_std = 0.05;
  EXPECT_NEAR(n.denormalize_delay(n.normalize_delay(0.12)), 0.12, 1e-12);
  // Linear space can produce negative delays — the ablation's weakness.
  EXPECT_LT(n.denormalize_delay(-10.0), 0.0);
}

TEST(Normalizer, FitLinearUsesRawStatistics) {
  DatasetGenerator gen(fast_config(), 15);
  const std::vector<Sample> samples = gen.generate_many(shared_nsfnet(), 3);
  const Normalizer lin = fit_normalizer(samples, /*log_space=*/false);
  EXPECT_FALSE(lin.log_space);
  EXPECT_GT(lin.log_delay_mean, 0.0);  // raw sub-second delays are positive
  EXPECT_LT(lin.log_delay_mean, 2.0);
}

TEST(Normalizer, FitProducesZeroMeanUnitStd) {
  DatasetGenerator gen(fast_config(), 5);
  const std::vector<Sample> samples = gen.generate_many(shared_nsfnet(), 4);
  const Normalizer norm = fit_normalizer(samples);
  double sum = 0.0, sum_sq = 0.0;
  std::size_t count = 0;
  for (const Sample& s : samples) {
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double z =
          norm.normalize_delay(s.delay_s[static_cast<std::size_t>(idx)]);
      sum += z;
      sum_sq += z * z;
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double var = sum_sq / static_cast<double>(count) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 1e-6);
  EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(Normalizer, ScalesInputsToOrderOne) {
  DatasetGenerator gen(fast_config(), 6);
  const std::vector<Sample> samples = gen.generate_many(shared_nsfnet(), 2);
  const Normalizer norm = fit_normalizer(samples);
  const double max_cap = samples[0].topology->max_capacity_bps();
  EXPECT_NEAR(max_cap * norm.capacity_scale, 1.0, 1e-9);
}

TEST(SplitDataset, PartitionsWithoutLoss) {
  DatasetGenerator gen(fast_config(), 8);
  std::vector<Sample> samples = gen.generate_many(shared_nsfnet(), 5);
  const auto [train, test] = split_dataset(std::move(samples), 0.6, 13);
  EXPECT_EQ(train.size(), 3u);
  EXPECT_EQ(test.size(), 2u);
}

TEST(SplitDataset, DeterministicForSeed) {
  DatasetGenerator gen(fast_config(), 9);
  std::vector<Sample> s1 = gen.generate_many(shared_nsfnet(), 4);
  std::vector<Sample> s2 = s1;
  const auto [a_train, a_test] = split_dataset(std::move(s1), 0.5, 99);
  const auto [b_train, b_test] = split_dataset(std::move(s2), 0.5, 99);
  ASSERT_EQ(a_train.size(), b_train.size());
  for (std::size_t i = 0; i < a_train.size(); ++i) {
    EXPECT_EQ(a_train[i].delay_s, b_train[i].delay_s);
  }
}

TEST(Serialization, RoundTripPreservesSamples) {
  DatasetGenerator gen(fast_config(), 10);
  const std::vector<Sample> samples = gen.generate_many(shared_nsfnet(), 2);
  const std::string path = ::testing::TempDir() + "ds.bin";
  save_dataset(path, samples);
  const std::vector<Sample> loaded = load_dataset(path);
  ASSERT_EQ(loaded.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(loaded[i].delay_s, samples[i].delay_s);
    EXPECT_EQ(loaded[i].jitter_s, samples[i].jitter_s);
    EXPECT_EQ(loaded[i].valid, samples[i].valid);
    EXPECT_EQ(loaded[i].topology->num_links(),
              samples[i].topology->num_links());
    EXPECT_DOUBLE_EQ(loaded[i].tm.rate_by_index(7),
                     samples[i].tm.rate_by_index(7));
    for (int idx = 0; idx < samples[i].num_pairs(); ++idx) {
      EXPECT_EQ(loaded[i].routing.path_by_index(idx),
                samples[i].routing.path_by_index(idx));
    }
  }
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/ds.bin"), std::runtime_error);
}

TEST(GeneratorConfig, RejectsBadUtilizationRange) {
  GeneratorConfig cfg;
  cfg.min_util = 0.9;
  cfg.max_util = 0.5;
  EXPECT_THROW(DatasetGenerator(cfg, 1), std::runtime_error);
}

}  // namespace
}  // namespace rn::dataset
