// Hostile-input sweeps over both dataset containers. The legacy RNDATA1
// blob has no checksums, so a flipped byte may still parse — but it must
// NEVER crash, over-allocate, or read out of bounds (every outcome is
// either a clean std::runtime_error or a structurally valid load). The
// RNDS1 shard container is CRC-indexed end to end, so the bar is higher:
// every truncation AND every byte flip anywhere in the file must throw.
// Runs under -DRN_SANITIZE=address via the `asan` ctest label.
#include "dataset/codec.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ag/serialize.h"
#include "dataset/shard.h"
#include "dataset/stream.h"
#include "topology/generators.h"

namespace rn::dataset {
namespace {

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  return cfg;
}

std::shared_ptr<const topo::Topology> shared_ring() {
  return std::make_shared<const topo::Topology>(topo::ring(6));
}

// One small-but-real legacy dataset image, built once for the whole suite.
const std::string& legacy_image() {
  static const std::string bytes = [] {
    DatasetGenerator gen(fast_config(), 51);
    const std::vector<Sample> samples =
        gen.generate_many(shared_ring(), 2);
    std::string out(kDatasetMagic, kDatasetMagicLen);
    put_pod(out, static_cast<std::uint32_t>(samples.size()));
    for (const Sample& s : samples) encode_sample(out, s);
    return out;
  }();
  return bytes;
}

// One small-but-real RNDS1 shard image.
const std::string& shard_image() {
  static const std::string bytes = [] {
    const std::string path = ::testing::TempDir() + "fuzz_corpus.rnds";
    generate_shard(path, fast_config(), 52, shared_ring(), 2, 0, 1);
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  return bytes;
}

TEST(LegacyFuzz, ImageIsValidBaseline) {
  EXPECT_EQ(parse_dataset_bytes(legacy_image(), "baseline").size(), 2u);
  verify_shard_bytes(shard_image(), "baseline");
}

TEST(LegacyFuzz, EveryTruncationThrows) {
  const std::string& bytes = legacy_image();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        parse_dataset_bytes(std::string_view(bytes.data(), len), "trunc"),
        std::runtime_error)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(LegacyFuzz, EveryByteFlipNeverCrashes) {
  // No checksums in RNDATA1: a flip may survive validation (e.g. in a
  // float payload). Both outcomes are fine; crashing / sanitizer faults
  // are not — which is exactly what this sweep exists to prove.
  std::string bytes = legacy_image();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const char orig = bytes[i];
    bytes[i] = static_cast<char>(orig ^ 0xff);
    try {
      const std::vector<Sample> loaded = parse_dataset_bytes(bytes, "flip");
      EXPECT_LE(loaded.size(), 2u);
    } catch (const std::runtime_error&) {
    }
    bytes[i] = orig;
  }
}

TEST(LegacyFuzz, AbsurdDeclaredCountsThrowBeforeAllocating) {
  // Sample count claims 4 billion records in a few-KB file.
  std::string bytes = legacy_image();
  const std::uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + kDatasetMagicLen, &huge, sizeof(huge));
  EXPECT_THROW(parse_dataset_bytes(bytes, "huge-count"), std::runtime_error);

  // First record's name_len claims more bytes than the file holds.
  bytes = legacy_image();
  std::memcpy(bytes.data() + kDatasetMagicLen + 4, &huge, sizeof(huge));
  EXPECT_THROW(parse_dataset_bytes(bytes, "huge-name"), std::runtime_error);
}

TEST(LegacyFuzz, BadMagicAndEmptyInputThrow) {
  EXPECT_THROW(parse_dataset_bytes("", "empty"), std::runtime_error);
  EXPECT_THROW(parse_dataset_bytes("RNDATA2\n\0\0\0\0", "magic"),
               std::runtime_error);
  std::string bytes = legacy_image();
  bytes[0] = 'X';
  EXPECT_THROW(parse_dataset_bytes(bytes, "flip-magic"), std::runtime_error);
}

TEST(ShardFuzz, EveryTruncationThrows) {
  const std::string& bytes = shard_image();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        verify_shard_bytes(std::string_view(bytes.data(), len), "trunc"),
        std::runtime_error)
        << "prefix of " << len << " bytes verified";
  }
}

TEST(ShardFuzz, EveryByteFlipThrows) {
  // CRCs over the header, every record, and the index: no flip anywhere
  // in the file may survive verification.
  std::string bytes = shard_image();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const char orig = bytes[i];
    bytes[i] = static_cast<char>(orig ^ 0x01);
    EXPECT_THROW(verify_shard_bytes(bytes, "flip"), std::runtime_error)
        << "flip at byte " << i << " verified";
    bytes[i] = orig;
  }
}

// Patches a u64 header field and re-stamps the header CRC so validation
// gets past the checksum and must catch the lie structurally.
std::string with_patched_header_u64(std::string bytes, std::size_t offset,
                                    std::uint64_t value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(value));
  const std::uint32_t crc =
      ag::crc32(bytes.data(), kShardHeaderBytes - sizeof(std::uint32_t));
  std::memcpy(bytes.data() + kShardHeaderBytes - sizeof(std::uint32_t), &crc,
              sizeof(crc));
  return bytes;
}

TEST(ShardFuzz, DoctoredHeadersThrow) {
  // Header layout: magic[8] version[4] seed[8] fingerprint[8]
  // shard_index[4] shard_count[4] first_index[8] count[8] payload_len[8]
  // header_crc[4].
  const std::string& bytes = shard_image();

  std::string bad_version = bytes;
  bad_version[8] = 2;  // version 1 -> 2; caught before the CRC even runs
  EXPECT_THROW(verify_shard_bytes(bad_version, "version"),
               std::runtime_error);

  // count claims 2^32 records; exact-size arithmetic must reject it even
  // though the header CRC is freshly valid.
  EXPECT_THROW(verify_shard_bytes(
                   with_patched_header_u64(bytes, 44, 1ull << 32), "count"),
               std::runtime_error);
  // payload_len larger than the file.
  EXPECT_THROW(
      verify_shard_bytes(
          with_patched_header_u64(bytes, 52, 1ull << 40), "payload"),
      std::runtime_error);
  // first_index + count overflows u64.
  EXPECT_THROW(
      verify_shard_bytes(
          with_patched_header_u64(bytes, 36, ~0ull - 1), "overflow"),
      std::runtime_error);
}

TEST(ShardFuzz, ShardReaderRejectsGarbageFiles) {
  const std::string missing = ::testing::TempDir() + "no_such.rnds";
  EXPECT_THROW(ShardReader reader(missing), std::runtime_error);

  const std::string garbage = ::testing::TempDir() + "garbage.rnds";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a shard";
  }
  EXPECT_THROW(ShardReader reader(garbage), std::runtime_error);
  EXPECT_FALSE(is_shard_file(garbage));
}

}  // namespace
}  // namespace rn::dataset
