#include "eval/metrics.h"

#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "eval/export.h"
#include "topology/generators.h"

namespace rn::eval {
namespace {

TEST(RegressionStats, PerfectPrediction) {
  const std::vector<double> truth = {0.1, 0.2, 0.3, 0.4};
  const RegressionStats s = regression_stats(truth, truth);
  EXPECT_DOUBLE_EQ(s.mae, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
  EXPECT_DOUBLE_EQ(s.mre, 0.0);
  EXPECT_NEAR(s.pearson_r, 1.0, 1e-12);
  EXPECT_NEAR(s.r2, 1.0, 1e-12);
}

TEST(RegressionStats, KnownErrors) {
  const std::vector<double> truth = {1.0, 2.0};
  const std::vector<double> pred = {1.5, 1.0};
  const RegressionStats s = regression_stats(truth, pred);
  EXPECT_DOUBLE_EQ(s.mae, 0.75);          // (0.5 + 1.0)/2
  EXPECT_DOUBLE_EQ(s.mre, 0.5);           // (0.5 + 0.5)/2
  EXPECT_NEAR(s.rmse, std::sqrt((0.25 + 1.0) / 2.0), 1e-12);
}

TEST(RegressionStats, ConstantPredictionHasLowR2) {
  const std::vector<double> truth = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred = {2.5, 2.5, 2.5, 2.5};
  const RegressionStats s = regression_stats(truth, pred);
  EXPECT_NEAR(s.r2, 0.0, 1e-9);  // predicting the mean gives R² = 0
}

TEST(RegressionStats, RejectsBadInput) {
  EXPECT_THROW(regression_stats({1.0}, {1.0, 2.0}), std::runtime_error);
  EXPECT_THROW(regression_stats({}, {}), std::runtime_error);
  // All-non-positive truth leaves nothing to report over.
  EXPECT_THROW(regression_stats({0.0}, {1.0}), std::runtime_error);
  EXPECT_THROW(regression_stats({0.0, -0.1}, {1.0, 1.0}),
               std::runtime_error);
}

TEST(RegressionStats, SkipsNonPositiveTruthInsteadOfAborting) {
  // The zero- and negative-truth pairs must drop out entirely: the stats
  // equal those of the positive-truth subseries, with the drops counted.
  const std::vector<double> truth = {1.0, 0.0, 2.0, -0.5};
  const std::vector<double> pred = {1.5, 9.0, 1.0, 9.0};
  const RegressionStats s = regression_stats(truth, pred);
  const RegressionStats clean = regression_stats({1.0, 2.0}, {1.5, 1.0});
  EXPECT_EQ(s.n, 2u);
  EXPECT_EQ(s.skipped_nonpositive, 2u);
  EXPECT_EQ(clean.skipped_nonpositive, 0u);
  EXPECT_DOUBLE_EQ(s.mae, clean.mae);
  EXPECT_DOUBLE_EQ(s.mre, clean.mre);
  EXPECT_DOUBLE_EQ(s.rmse, clean.rmse);
  EXPECT_DOUBLE_EQ(s.r2, clean.r2);
}

TEST(RelativeErrors, SignedValues) {
  const std::vector<double> re = relative_errors({2.0, 4.0}, {1.0, 5.0});
  EXPECT_DOUBLE_EQ(re[0], -0.5);
  EXPECT_DOUBLE_EQ(re[1], 0.25);
}

TEST(RelativeErrors, SkipsAndCountsNonPositiveTruth) {
  std::size_t skipped = 0;
  const std::vector<double> re =
      relative_errors({2.0, 0.0, 4.0, -1.0}, {1.0, 7.0, 5.0, 7.0}, &skipped);
  ASSERT_EQ(re.size(), 2u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_DOUBLE_EQ(re[0], -0.5);
  EXPECT_DOUBLE_EQ(re[1], 0.25);
}

TEST(EmpiricalCdf, MonotoneAndBounded) {
  const std::vector<CdfPoint> cdf =
      empirical_cdf({0.5, -0.2, 0.1, 0.9, 0.0, -0.4}, 21);
  ASSERT_EQ(cdf.size(), 21u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].p, cdf[i - 1].p);
  }
  EXPECT_GT(cdf.front().p, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().p, 1.0);
}

TEST(EmpiricalCdf, MedianOfSymmetricData) {
  std::vector<double> xs;
  for (int i = -50; i <= 50; ++i) xs.push_back(i / 50.0);
  const std::vector<CdfPoint> cdf = empirical_cdf(xs, 101);
  // x ≈ 0 should sit near p = 0.5.
  double p_at_zero = 0.0;
  for (const CdfPoint& pt : cdf) {
    if (pt.x <= 0.0) p_at_zero = pt.p;
  }
  EXPECT_NEAR(p_at_zero, 0.5, 0.05);
}

dataset::Sample sample_with_delays(const std::vector<double>& delays) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(3));
  routing::RoutingScheme scheme = routing::shortest_path_routing(*topology);
  traffic::TrafficMatrix tm(3);
  dataset::Sample s{topology, std::move(scheme), std::move(tm), {}, {}, {},
                    0.5};
  s.delay_s = delays;
  s.jitter_s.assign(delays.size(), 0.001);
  s.valid.assign(delays.size(), 1);
  return s;
}

TEST(TopNPaths, RanksByPredictedDelayDescending) {
  const dataset::Sample s =
      sample_with_delays({0.01, 0.02, 0.03, 0.04, 0.05, 0.06});
  const std::vector<double> pred = {0.06, 0.01, 0.04, 0.03, 0.05, 0.02};
  const std::vector<RankedPath> top = top_n_paths(s, pred, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].predicted_delay_s, 0.06);
  EXPECT_DOUBLE_EQ(top[1].predicted_delay_s, 0.05);
  EXPECT_DOUBLE_EQ(top[2].predicted_delay_s, 0.04);
  EXPECT_GE(top[0].hops, 1);
}

TEST(TopNPaths, SkipsInvalidPaths) {
  dataset::Sample s = sample_with_delays({0.01, 0.02, 0.03, 0.04, 0.05, 0.06});
  s.valid[0] = 0;
  const std::vector<double> pred = {9.0, 0.01, 0.02, 0.03, 0.04, 0.05};
  const std::vector<RankedPath> top = top_n_paths(s, pred, 2);
  EXPECT_DOUBLE_EQ(top[0].predicted_delay_s, 0.05);  // 9.0 excluded
}

TEST(CollectDelayPairs, SkipsInvalid) {
  dataset::Sample s = sample_with_delays({0.01, 0.02, 0.03, 0.04, 0.05, 0.06});
  s.valid[1] = 0;
  const PairedSeries series = collect_delay_pairs(
      {s}, [](const dataset::Sample& smp) {
        return std::vector<double>(
            static_cast<std::size_t>(smp.num_pairs()), 0.02);
      });
  EXPECT_EQ(series.truth.size(), 5u);
  EXPECT_EQ(series.pred.size(), 5u);
}

TEST(AsciiScatter, ContainsMarksAndDiagonal) {
  const std::string plot =
      ascii_scatter({0.1, 0.2, 0.3}, {0.12, 0.19, 0.33});
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find('.'), std::string::npos);
  EXPECT_NE(plot.find("range"), std::string::npos);
}

TEST(AsciiCdf, RendersAllSeries) {
  const std::vector<NamedCdf> series = {
      {"a", empirical_cdf({0.1, 0.2, 0.3}, 11)},
      {"b", empirical_cdf({-0.1, 0.0, 0.1}, 11)},
  };
  const std::string plot = ascii_cdf(series);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find("= a"), std::string::npos);
  EXPECT_NE(plot.find("= b"), std::string::npos);
}

TEST(ErrorByUtilization, BucketsPartitionAndAggregate) {
  // Two flows on a line: one through a hot link, one through a cold link.
  auto topology = std::make_shared<const topo::Topology>(topo::line(3));
  routing::RoutingScheme scheme = routing::shortest_path_routing(*topology);
  traffic::TrafficMatrix tm(3);
  tm.set_rate_bps(0, 1, 9'000.0);  // ρ = 0.9 on link 0→1
  tm.set_rate_bps(1, 2, 1'000.0);  // ρ = 0.1 on link 1→2 (disjoint links)
  dataset::Sample s{topology, std::move(scheme), std::move(tm), {}, {}, {},
                    0.9};
  s.delay_s.assign(6, 0.1);
  s.jitter_s.assign(6, 0.01);
  s.valid.assign(6, 0);
  s.valid[static_cast<std::size_t>(topo::pair_index(0, 1, 3))] = 1;
  s.valid[static_cast<std::size_t>(topo::pair_index(1, 2, 3))] = 1;

  const std::vector<UtilizationBucket> buckets = error_by_utilization(
      {s},
      [](const dataset::Sample& smp) {
        // Predict 0.2 everywhere → |rel err| = 1.0 for every valid path.
        return std::vector<double>(
            static_cast<std::size_t>(smp.num_pairs()), 0.2);
      });
  std::size_t total = 0;
  for (const UtilizationBucket& b : buckets) {
    total += b.paths;
    if (b.paths > 0) {
      EXPECT_NEAR(b.mre, 1.0, 1e-9);
    }
  }
  EXPECT_EQ(total, 2u);
  // The hot path (ρ=0.9) and cold path (ρ=0.1) land in different buckets.
  std::size_t nonempty = 0;
  for (const UtilizationBucket& b : buckets) {
    if (b.paths > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 2u);
}

TEST(ExportCsv, RegressionFileHasHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "reg.csv";
  write_regression_csv(path, {0.1, 0.2}, {0.11, 0.19});
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "true_delay_s,predicted_delay_s");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
}

TEST(ExportCsv, CdfFileListsAllSeries) {
  const std::string path = ::testing::TempDir() + "cdf.csv";
  write_cdf_csv(path, {{"alpha", empirical_cdf({1.0, 2.0}, 3)},
                       {"beta", empirical_cdf({3.0}, 2)}});
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("alpha,"), std::string::npos);
  EXPECT_NE(all.find("beta,"), std::string::npos);
}

TEST(ExportCsv, TopPathsRanksSequentially) {
  const dataset::Sample s =
      sample_with_delays({0.01, 0.02, 0.03, 0.04, 0.05, 0.06});
  const std::vector<RankedPath> top =
      top_n_paths(s, {0.06, 0.01, 0.04, 0.03, 0.05, 0.02}, 3);
  const std::string path = ::testing::TempDir() + "top.csv";
  write_top_paths_csv(path, top);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line.rfind("1,", 0), 0u);  // first data row is rank 1
}

TEST(ExportCsv, UnwritablePathThrows) {
  EXPECT_THROW(write_regression_csv("/nonexistent/dir/x.csv", {1.0}, {1.0}),
               std::runtime_error);
}

TEST(AsciiRenderers, RejectTinyCanvas) {
  EXPECT_THROW(ascii_scatter({1.0}, {1.0}, 2, 2), std::runtime_error);
  EXPECT_THROW(ascii_cdf({}, 40, 10), std::runtime_error);
}

}  // namespace
}  // namespace rn::eval
