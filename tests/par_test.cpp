#include "par/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace rn::par {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  auto fut = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPool, ExceptionsSurfaceFromFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  set_global_threads(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoOps) {
  set_global_threads(2);
  int calls = 0;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel_for(9, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RespectsGrainAsMinimumChunk) {
  set_global_threads(4);
  std::mutex mu;
  std::vector<std::int64_t> sizes;
  parallel_for(0, 100, 16, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(hi - lo);
  });
  // Chunks complete in any order; at most one (the remainder) may be
  // smaller than the grain.
  std::int64_t total = 0;
  int below_grain = 0;
  for (const std::int64_t size : sizes) {
    total += size;
    if (size < 16) ++below_grain;
  }
  EXPECT_EQ(total, 100);
  EXPECT_LE(below_grain, 1);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  set_global_threads(4);
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // Inner loop from (possibly) a worker thread must not deadlock.
      parallel_for(0, 10, 1, [&](std::int64_t ilo, std::int64_t ihi) {
        sum.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(sum.load(), 80);
}

TEST(ParallelFor, PropagatesChunkExceptions) {
  set_global_threads(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::int64_t lo, std::int64_t) {
                     if (lo == 0) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, WaitsForAllChunksWhenOneThrows) {
  set_global_threads(4);
  // The caller's first chunk (lo == 0) throws; the worker chunks keep
  // writing through a reference to this stack-local vector. parallel_for
  // must not return (and unwind it) until every chunk has finished.
  std::vector<std::atomic<int>> hits(96);
  EXPECT_THROW(
      parallel_for(0, 96, 1,
                   [&](std::int64_t lo, std::int64_t hi) {
                     if (lo == 0) throw std::runtime_error("first chunk");
                     std::this_thread::sleep_for(std::chrono::milliseconds(2));
                     for (std::int64_t i = lo; i < hi; ++i) {
                       hits[static_cast<std::size_t>(i)].fetch_add(1);
                     }
                   }),
      std::runtime_error);
  // Every index outside the throwing chunk was visited exactly once, i.e.
  // all submitted chunks completed before parallel_for returned.
  const std::int64_t first_chunk = 96 / (4 * 4);
  for (std::int64_t i = first_chunk; i < 96; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(GlobalPool, SetThreadsResizesAndIsIdempotent) {
  set_global_threads(3);
  EXPECT_EQ(global_threads(), 3);
  ThreadPool* before = global_pool().get();
  set_global_threads(3);  // same width: pool object must survive
  EXPECT_EQ(global_pool().get(), before);
  set_global_threads(1);
  EXPECT_EQ(global_threads(), 1);
}

TEST(GlobalPool, RebuildDuringInFlightWorkIsSafe) {
  set_global_threads(4);
  // parallel_for holds a shared_ptr to the pool it started on, so a
  // concurrent set_global_threads must not free it mid-loop.
  std::atomic<std::int64_t> sum{0};
  std::thread rebuilder([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    set_global_threads(2);
  });
  parallel_for(0, 64, 1, [&](std::int64_t lo, std::int64_t hi) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    sum.fetch_add(hi - lo);
  });
  rebuilder.join();
  EXPECT_EQ(sum.load(), 64);
  EXPECT_EQ(global_threads(), 2);
  set_global_threads(1);
}

TEST(GlobalPool, DefaultThreadsIsPositive) {
  EXPECT_GE(default_threads(), 1);
}

TEST(Telemetry, PoolEmitsParMetrics) {
  obs::Registry& reg = obs::Registry::global();
  set_global_threads(4);
  const std::uint64_t tasks_before =
      reg.counter("par.tasks_total").value();
  const std::uint64_t loops_before =
      reg.counter("par.parallel_for_total").value();
  parallel_for(0, 64, 1, [](std::int64_t, std::int64_t) {});
  EXPECT_GT(reg.counter("par.tasks_total").value(), tasks_before);
  EXPECT_GT(reg.counter("par.parallel_for_total").value(), loops_before);
  EXPECT_EQ(reg.gauge("par.pool.threads").value(), 4.0);
  EXPECT_GT(reg.histogram("par.task_s").count(), 0u);
}

}  // namespace
}  // namespace rn::par
