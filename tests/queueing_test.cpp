#include "queueing/queueing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "topology/generators.h"

namespace rn::queueing {
namespace {

TEST(SizeMoments, Exponential) {
  traffic::TrafficModel m;
  m.mean_pkt_size_bits = 500.0;
  const SizeMoments mm = size_moments(m);
  EXPECT_DOUBLE_EQ(mm.m1, 500.0);
  EXPECT_DOUBLE_EQ(mm.m2, 2.0 * 500.0 * 500.0);
  EXPECT_DOUBLE_EQ(mm.m3, 6.0 * 500.0 * 500.0 * 500.0);
}

TEST(SizeMoments, Fixed) {
  traffic::TrafficModel m;
  m.sizes = traffic::PacketSizeModel::kFixed;
  m.mean_pkt_size_bits = 800.0;
  const SizeMoments mm = size_moments(m);
  EXPECT_DOUBLE_EQ(mm.m1, 800.0);
  EXPECT_DOUBLE_EQ(mm.m2, 800.0 * 800.0);
}

TEST(SizeMoments, BimodalFirstMomentIsMean) {
  traffic::TrafficModel m;
  m.sizes = traffic::PacketSizeModel::kBimodal;
  m.mean_pkt_size_bits = 1000.0;
  const SizeMoments mm = size_moments(m);
  EXPECT_NEAR(mm.m1, 1000.0, 1e-9);
  // Mixture of two point masses has higher m2 than a single point mass.
  EXPECT_GT(mm.m2, 1000.0 * 1000.0);
}

// Single-link M/M/1 scenario shared with the simulator comparison.
struct SingleLink {
  SingleLink(double cap, double rate)
      : topology("q", 2), scheme(2), tm(2) {
    topology.add_link(0, 1, cap);
    scheme.set_path(0, 1, {0});
    scheme.set_path(1, 0, {});
    tm.set_rate_bps(0, 1, rate);
  }
  topo::Topology topology;
  routing::RoutingScheme scheme;
  traffic::TrafficMatrix tm;
};

TEST(QueueingPredictor, MM1ClosedForm) {
  // μ = 10 pkt/s, λ = 5 → W = 1/(μ−λ) = 0.2 s; Var = 1/(μ−λ)², std = 0.2.
  SingleLink sc(10'000.0, 5'000.0);
  const QueueingPredictor predictor{traffic::TrafficModel{}};
  const AnalyticPrediction pred =
      predictor.predict(sc.topology, sc.scheme, sc.tm);
  const int idx = topo::pair_index(0, 1, 2);
  EXPECT_NEAR(pred.delay_s[static_cast<std::size_t>(idx)], 0.2, 1e-9);
  EXPECT_NEAR(pred.jitter_s[static_cast<std::size_t>(idx)], 0.2, 1e-9);
  EXPECT_FALSE(pred.any_unstable);
  EXPECT_NEAR(pred.link_utilization[0], 0.5, 1e-12);
}

TEST(QueueingPredictor, MD1HalvesWaitingTime) {
  SingleLink sc(10'000.0, 5'000.0);
  traffic::TrafficModel fixed;
  fixed.sizes = traffic::PacketSizeModel::kFixed;
  const AnalyticPrediction md1 =
      QueueingPredictor{fixed}.predict(sc.topology, sc.scheme, sc.tm);
  // M/D/1: Wq = ρ/(2μ(1−ρ)) = 0.05; sojourn = 0.05 + 0.1 = 0.15.
  EXPECT_NEAR(md1.delay_s[static_cast<std::size_t>(topo::pair_index(0, 1, 2))],
              0.15, 1e-9);
}

TEST(QueueingPredictor, PathDelayIsSumOfLinks) {
  const topo::Topology t = topo::line(3, 10'000.0);
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  traffic::TrafficMatrix tm(3);
  tm.set_rate_bps(0, 2, 5'000.0);
  const AnalyticPrediction pred =
      QueueingPredictor{traffic::TrafficModel{}}.predict(t, scheme, tm);
  const int two_hop = topo::pair_index(0, 2, 3);
  // Both links see λ=5, μ=10 → 0.2 each.
  EXPECT_NEAR(pred.delay_s[static_cast<std::size_t>(two_hop)], 0.4, 1e-9);
}

TEST(QueueingPredictor, FlagsUnstableLinks) {
  SingleLink sc(10'000.0, 12'000.0);
  const AnalyticPrediction pred =
      QueueingPredictor{traffic::TrafficModel{}}.predict(sc.topology,
                                                         sc.scheme, sc.tm);
  EXPECT_TRUE(pred.any_unstable);
  // Clamped, finite, large.
  EXPECT_GT(pred.delay_s[static_cast<std::size_t>(topo::pair_index(0, 1, 2))],
            1.0);
  EXPECT_TRUE(std::isfinite(
      pred.delay_s[static_cast<std::size_t>(topo::pair_index(0, 1, 2))]));
}

TEST(QueueingPredictor, MatchesSimulatorOnPoissonExponential) {
  // On its home turf (M/M/1) the analytic model must agree with the packet
  // simulator — this cross-validates both.
  SingleLink sc(10'000.0, 6'000.0);
  sim::SimConfig cfg;
  cfg.warmup_s = 50.0;
  cfg.horizon_s = 2'050.0;
  const sim::SimResult simres =
      sim::PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const AnalyticPrediction pred =
      QueueingPredictor{traffic::TrafficModel{}}.predict(sc.topology,
                                                         sc.scheme, sc.tm);
  const auto idx = static_cast<std::size_t>(topo::pair_index(0, 1, 2));
  EXPECT_NEAR(pred.delay_s[idx], simres.paths[idx].mean_delay_s,
              0.1 * pred.delay_s[idx]);
}

TEST(QueueingPredictor, UnderestimatesBurstyTraffic) {
  // The paper's premise: analytic models miss non-Markovian behaviour. An
  // ON/OFF source at the same mean rate queues much more than M/M/1 says.
  SingleLink sc(10'000.0, 6'000.0);
  sim::SimConfig cfg;
  cfg.warmup_s = 50.0;
  cfg.horizon_s = 2'050.0;
  cfg.model.arrivals = traffic::ArrivalProcess::kOnOff;
  cfg.model.on_fraction = 0.3;
  cfg.model.mean_on_s = 0.5;
  const sim::SimResult simres =
      sim::PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  // Analytic prediction knows only the average rate (Poisson assumption).
  const AnalyticPrediction pred =
      QueueingPredictor{traffic::TrafficModel{}}.predict(sc.topology,
                                                         sc.scheme, sc.tm);
  const auto idx = static_cast<std::size_t>(topo::pair_index(0, 1, 2));
  EXPECT_GT(simres.paths[idx].mean_delay_s, 1.3 * pred.delay_s[idx]);
}

TEST(QueueingPredictor, RejectsBadUtilizationCap) {
  EXPECT_THROW(QueueingPredictor(traffic::TrafficModel{}, 1.5),
               std::runtime_error);
}

}  // namespace
}  // namespace rn::queueing
