// QoS scheduling extension: strict-priority and deficit-round-robin output
// queues, exercised on a single bottleneck so the discipline's effect is
// isolated and comparable against FIFO.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "topology/generators.h"

namespace rn::sim {
namespace {

// Two flows (0→2 and 1→2) share the bottleneck into node 2.
struct SharedBottleneck {
  SharedBottleneck(double rate0, double rate1)
      : topology("bottleneck", 4), scheme(4), tm(4) {
    // 0 and 1 feed node 3, which owns the bottleneck 3→2.
    topology.add_link(0, 3, 1e9);
    topology.add_link(1, 3, 1e9);
    topology.add_link(3, 2, 10'000.0);
    const auto l03 = topology.find_link(0, 3);
    const auto l13 = topology.find_link(1, 3);
    const auto l32 = topology.find_link(3, 2);
    scheme.set_path(0, 2, {*l03, *l32});
    scheme.set_path(1, 2, {*l13, *l32});
    tm.set_rate_bps(0, 2, rate0);
    tm.set_rate_bps(1, 2, rate1);
  }
  topo::Topology topology;
  routing::RoutingScheme scheme;
  traffic::TrafficMatrix tm;

  int flow0() const { return topo::pair_index(0, 2, 4); }
  int flow1() const { return topo::pair_index(1, 2, 4); }
};

SimConfig base_config() {
  SimConfig cfg;
  cfg.warmup_s = 20.0;
  cfg.horizon_s = 1'020.0;
  cfg.seed = 5;
  return cfg;
}

TEST(StrictPriority, HighClassSeesLowerDelayUnderLoad) {
  SharedBottleneck sc(4'000.0, 4'000.0);  // combined ρ = 0.8
  SimConfig cfg = base_config();
  cfg.scheduling = Scheduling::kStrictPriority;
  cfg.num_classes = 2;
  const int priority_flow = sc.flow0();
  cfg.class_of_flow = [priority_flow](int idx) {
    return idx == priority_flow ? 0 : 1;
  };
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const double hi = res.paths[static_cast<std::size_t>(sc.flow0())].mean_delay_s;
  const double lo = res.paths[static_cast<std::size_t>(sc.flow1())].mean_delay_s;
  EXPECT_LT(hi, 0.6 * lo);
}

TEST(StrictPriority, HighClassUnaffectedByLowClassLoad) {
  // The priority flow's delay should look like it has the link (almost) to
  // itself, regardless of best-effort load.
  SimConfig cfg = base_config();
  cfg.scheduling = Scheduling::kStrictPriority;
  cfg.num_classes = 2;

  SharedBottleneck light(3'000.0, 500.0);
  SharedBottleneck heavy(3'000.0, 6'000.0);
  const int priority_flow = light.flow0();
  cfg.class_of_flow = [priority_flow](int idx) {
    return idx == priority_flow ? 0 : 1;
  };
  const double d_light =
      PacketSimulator(cfg).run(light.topology, light.scheme, light.tm)
          .paths[static_cast<std::size_t>(light.flow0())].mean_delay_s;
  const double d_heavy =
      PacketSimulator(cfg).run(heavy.topology, heavy.scheme, heavy.tm)
          .paths[static_cast<std::size_t>(heavy.flow0())].mean_delay_s;
  // Non-preemptive priority still waits for at most one best-effort packet
  // in service; allow 60% growth rather than the ~4x FIFO would show.
  EXPECT_LT(d_heavy, 1.6 * d_light);
}

TEST(StrictPriority, FifoTreatsClassesEqually) {
  SharedBottleneck sc(4'000.0, 4'000.0);
  SimConfig cfg = base_config();  // FIFO
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const double a = res.paths[static_cast<std::size_t>(sc.flow0())].mean_delay_s;
  const double b = res.paths[static_cast<std::size_t>(sc.flow1())].mean_delay_s;
  EXPECT_NEAR(a, b, 0.15 * std::max(a, b));
}

TEST(DeficitRoundRobin, SharesBottleneckFairly) {
  // Under DRR, two equally overloaded classes pin their buffers and see
  // similar (buffer-bound) delay; compare to strict priority where the
  // low class is starved. Clear overload (ρ = 1.6) keeps both queues
  // pegged so the comparison is stable within a short run.
  SharedBottleneck sc(8'000.0, 8'000.0);
  SimConfig cfg = base_config();
  cfg.horizon_s = 220.0;  // saturated queues grow; keep the run bounded
  cfg.link_buffer_pkts = 50;
  cfg.num_classes = 2;
  const int f0 = sc.flow0();
  cfg.class_of_flow = [f0](int idx) { return idx == f0 ? 0 : 1; };

  cfg.scheduling = Scheduling::kDeficitRoundRobin;
  const SimResult drr =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const double drr0 =
      drr.paths[static_cast<std::size_t>(sc.flow0())].mean_delay_s;
  const double drr1 =
      drr.paths[static_cast<std::size_t>(sc.flow1())].mean_delay_s;
  EXPECT_NEAR(drr0, drr1, 0.35 * std::max(drr0, drr1));

  cfg.scheduling = Scheduling::kStrictPriority;
  const SimResult sp =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const double sp0 =
      sp.paths[static_cast<std::size_t>(sc.flow0())].mean_delay_s;
  const double sp1 =
      sp.paths[static_cast<std::size_t>(sc.flow1())].mean_delay_s;
  EXPECT_LT(sp0, 0.5 * sp1);  // priority starves best-effort instead
}

TEST(DeficitRoundRobin, ThroughputSplitsByQuantumEvenWithUnequalDemand) {
  // Class 0 offers 2x the demand of class 1 into a saturated link; DRR with
  // equal quanta should still deliver roughly equal *throughput* shares
  // (fairness), dropping the excess of the greedy class.
  SharedBottleneck sc(12'000.0, 6'000.0);
  SimConfig cfg = base_config();
  cfg.horizon_s = 220.0;
  cfg.link_buffer_pkts = 30;
  cfg.scheduling = Scheduling::kDeficitRoundRobin;
  cfg.num_classes = 2;
  const int f0 = sc.flow0();
  cfg.class_of_flow = [f0](int idx) { return idx == f0 ? 0 : 1; };
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const double d0 = static_cast<double>(
      res.paths[static_cast<std::size_t>(sc.flow0())].delivered);
  const double d1 = static_cast<double>(
      res.paths[static_cast<std::size_t>(sc.flow1())].delivered);
  EXPECT_GT(d0, 0.0);
  EXPECT_GT(d1, 0.0);
  EXPECT_NEAR(d0 / d1, 1.0, 0.25);
}

TEST(Scheduling, RejectsOutOfRangeClass) {
  SharedBottleneck sc(1'000.0, 1'000.0);
  SimConfig cfg = base_config();
  cfg.scheduling = Scheduling::kStrictPriority;
  cfg.num_classes = 2;
  cfg.class_of_flow = [](int) { return 7; };
  EXPECT_THROW(PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm),
               std::runtime_error);
}

TEST(Scheduling, RejectsBadConfig) {
  SimConfig cfg = base_config();
  cfg.num_classes = 0;
  EXPECT_THROW(PacketSimulator{cfg}, std::runtime_error);
  SimConfig cfg2 = base_config();
  cfg2.drr_quantum_bits = 0.0;
  EXPECT_THROW(PacketSimulator{cfg2}, std::runtime_error);
}

TEST(Scheduling, FifoResultsUnchangedByClassAssignments) {
  // With FIFO scheduling, class labels must have no effect (single queue).
  SharedBottleneck sc(4'000.0, 3'000.0);
  SimConfig cfg = base_config();
  const SimResult plain =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  cfg.num_classes = 2;
  const int f0 = sc.flow0();
  cfg.class_of_flow = [f0](int idx) { return idx == f0 ? 0 : 1; };
  const SimResult labeled =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_DOUBLE_EQ(
      plain.paths[static_cast<std::size_t>(sc.flow0())].mean_delay_s,
      labeled.paths[static_cast<std::size_t>(sc.flow0())].mean_delay_s);
}

}  // namespace
}  // namespace rn::sim
