# Tracing smoke test (ctest -R trace_smoke): drives the real routenet CLI
# with --trace-out through generation and a short training run, asserts the
# exported Chrome trace files carry the expected span hierarchy, and checks
# `routenet obs trace` both summarizes them (rc 0) and rejects garbage
# (rc 1, one-line error). Invoked with -DRN_CLI=<binary> -DWORK_DIR=<dir>.

if(NOT DEFINED RN_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRN_CLI=... -DWORK_DIR=... -P trace_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

function(expect_spans file)
  file(READ "${WORK_DIR}/${file}" trace_json)
  string(FIND "${trace_json}" "\"displayTimeUnit\":\"ms\"" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "${file} is not a Chrome trace file")
  endif()
  foreach(needle IN LISTS ARGN)
    string(FIND "${trace_json}" "\"name\":\"${needle}\"" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "${file} is missing the ${needle} span")
    endif()
  endforeach()
endfunction()

run_step("${RN_CLI}" make-topology --kind ring --nodes 6 --out net.topo)

# Dataset generation: parallel_for chunks must nest under generate_many even
# on the 1-thread inline path (the CI container is single-core).
run_step("${RN_CLI}" gen-dataset --topology net.topo --count 4
         --pkts-per-flow 30 --seed 5 --out mini.ds --trace-out gen.trace.json)
expect_spans(gen.trace.json
             dataset.generate_many par.chunk dataset.sample sim.run)

# Training: epoch -> batch -> forward/backward/optimizer hierarchy.
run_step("${RN_CLI}" train --dataset mini.ds --epochs 2 --batch 2 --dim 8
         --iterations 2 --out mini.model --trace-out train.trace.json)
expect_spans(train.trace.json
             trainer.fit trainer.epoch trainer.batch trainer.forward
             routenet.forward routenet.mp ag.backward ag.adam_step)

# Span filtering: the same training run with a high min-duration threshold
# must export a strictly smaller trace, and `obs trace` must disclose the
# suppressed spans so the filtered file stays honest.
run_step("${RN_CLI}" train --dataset mini.ds --epochs 2 --batch 2 --dim 8
         --iterations 2 --out mini2.model
         --trace-out filtered.trace.json --trace-min-us 500)
file(SIZE "${WORK_DIR}/train.trace.json" full_size)
file(SIZE "${WORK_DIR}/filtered.trace.json" filtered_size)
if(NOT filtered_size LESS full_size)
  message(FATAL_ERROR "--trace-min-us did not shrink the trace: "
          "filtered ${filtered_size} >= unfiltered ${full_size}")
endif()
file(READ "${WORK_DIR}/filtered.trace.json" filtered_json)
string(REGEX MATCH "\"rnSampledOut\":[1-9]" sampled_match "${filtered_json}")
if(sampled_match STREQUAL "")
  message(FATAL_ERROR "filtered trace does not count its suppressed spans")
endif()
execute_process(COMMAND "${RN_CLI}" obs trace filtered.trace.json
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE filtered_summary
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs trace on the filtered trace failed (${rc}): ${err}")
endif()
string(FIND "${filtered_summary}" "sampled out" found)
if(found EQUAL -1)
  message(FATAL_ERROR "obs trace does not report the sampled-out count:\n${filtered_summary}")
endif()

# The summarizer accepts both real traces...
run_step("${RN_CLI}" obs trace gen.trace.json)
run_step("${RN_CLI}" obs trace train.trace.json 5)

# ...and rejects garbage with a one-line error and rc 1.
file(WRITE "${WORK_DIR}/garbage.json" "not a trace")
execute_process(COMMAND "${RN_CLI}" obs trace garbage.json
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "obs trace on garbage returned ${rc}, expected 1")
endif()
string(FIND "${err}" "error:" found)
if(found EQUAL -1)
  message(FATAL_ERROR "obs trace on garbage printed no error line: ${err}")
endif()

message(STATUS "trace smoke OK")
