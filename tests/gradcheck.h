// Finite-difference gradient checking shared by the autodiff tests.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "ag/tape.h"

namespace rn::testing {

// Rebuilds the forward pass (via `build`) with central differences on every
// element of every parameter and compares against the analytic gradient
// from one backward() call. `build` must be a pure function of the current
// parameter values.
inline void expect_gradients_match(
    const std::vector<ag::Parameter*>& params,
    const std::function<ag::ValueId(ag::Tape&)>& build, float eps = 1e-2f,
    float rel_tol = 5e-2f, float abs_tol = 1e-4f) {
  // Analytic gradients.
  for (ag::Parameter* p : params) p->zero_grad();
  {
    ag::Tape tape;
    const ag::ValueId loss = build(tape);
    tape.backward(loss);
  }
  std::vector<ag::Tensor> analytic;
  analytic.reserve(params.size());
  for (ag::Parameter* p : params) analytic.push_back(p->grad);

  auto eval_loss = [&]() -> double {
    ag::Tape tape;
    return tape.value(build(tape)).at(0, 0);
  };

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    ag::Parameter& p = *params[pi];
    for (int i = 0; i < p.value.size(); ++i) {
      const auto k = static_cast<std::size_t>(i);
      const float orig = p.value[k];
      p.value[k] = orig + eps;
      const double up = eval_loss();
      p.value[k] = orig - eps;
      const double down = eval_loss();
      p.value[k] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double exact = analytic[pi][k];
      const double denom = std::max({std::abs(numeric), std::abs(exact), 1.0e-6});
      EXPECT_NEAR(exact, numeric,
                  std::max(static_cast<double>(abs_tol),
                           static_cast<double>(rel_tol) * denom))
          << "param " << p.name << " element " << i;
    }
  }
}

}  // namespace rn::testing
